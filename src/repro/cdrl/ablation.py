"""Ablation variants of the LINX CDRL engine (Table 4 of the paper).

Four variants are compared:

* **Binary Reward Only** — naive binary end-of-session compliance signal,
  no immediate reward, basic (non specification-aware) network;
* **Binary+Imm. Reward** — the graded end-of-session compliance reward of
  Section 5.2, still without the immediate reward and the
  specification-aware network;
* **W/O Spec. Aware NN** — the full reward scheme (graded + immediate) with
  the basic network;
* **LINX-CDRL (Full)** — the complete engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.dataframe.table import DataTable
from repro.ldx.ast import LdxQuery
from repro.ldx.parser import parse_ldx

from .agent import CdrlConfig, CdrlResult, LinxCdrlAgent

#: Canonical variant names, in the order of Table 4.
VARIANT_NAMES: tuple[str, ...] = (
    "Binary Reward Only",
    "Binary+Imm. Reward",
    "W/O Spec. Aware NN",
    "LINX-CDRL (Full)",
)


def variant_config(name: str, base: CdrlConfig | None = None) -> CdrlConfig:
    """Build the :class:`CdrlConfig` flags for a named ablation variant."""
    base = base or CdrlConfig()
    if name == "Binary Reward Only":
        return replace(
            base,
            graded_eos_reward=False,
            immediate_reward=False,
            specification_aware_network=False,
        )
    if name == "Binary+Imm. Reward":
        return replace(
            base,
            graded_eos_reward=True,
            immediate_reward=False,
            specification_aware_network=False,
        )
    if name == "W/O Spec. Aware NN":
        return replace(
            base,
            graded_eos_reward=True,
            immediate_reward=True,
            specification_aware_network=False,
        )
    if name == "LINX-CDRL (Full)":
        return replace(
            base,
            graded_eos_reward=True,
            immediate_reward=True,
            specification_aware_network=True,
        )
    raise ValueError(f"unknown ablation variant {name!r}; known: {VARIANT_NAMES}")


@dataclass
class AblationCase:
    """One (dataset, LDX query) pair in the ablation workload."""

    name: str
    dataset: DataTable
    query: LdxQuery

    @classmethod
    def from_text(cls, name: str, dataset: DataTable, ldx_text: str) -> "AblationCase":
        return cls(name=name, dataset=dataset, query=parse_ldx(ldx_text))


@dataclass
class VariantOutcome:
    """Aggregate compliance counts for one variant over the whole workload."""

    variant: str
    structure_compliant: int = 0
    fully_compliant: int = 0
    total: int = 0
    results: list[CdrlResult] = field(default_factory=list)

    def structure_rate(self) -> float:
        return self.structure_compliant / self.total if self.total else 0.0

    def full_rate(self) -> float:
        return self.fully_compliant / self.total if self.total else 0.0

    def row(self) -> dict[str, object]:
        """Table-4-style row."""
        return {
            "variant": self.variant,
            "structure_compliance": f"{self.structure_compliant}/{self.total}"
            f" ({round(100 * self.structure_rate())}%)",
            "full_compliance": f"{self.fully_compliant}/{self.total}"
            f" ({round(100 * self.full_rate())}%)",
        }


def run_ablation(
    cases: Sequence[AblationCase],
    variants: Sequence[str] = VARIANT_NAMES,
    base_config: CdrlConfig | None = None,
) -> list[VariantOutcome]:
    """Run every ablation variant on every case and aggregate compliance counts."""
    outcomes: list[VariantOutcome] = []
    for variant in variants:
        outcome = VariantOutcome(variant=variant, total=len(cases))
        config = variant_config(variant, base_config)
        for index, case in enumerate(cases):
            agent = LinxCdrlAgent(
                case.dataset, case.query, config=replace(config, seed=config.seed + index)
            )
            result = agent.run()
            outcome.results.append(result)
            if result.structurally_compliant:
                outcome.structure_compliant += 1
            if result.fully_compliant:
                outcome.fully_compliant += 1
        outcomes.append(outcome)
    return outcomes
