"""Operation snippets derived from the operational LDX specifications.

The specification-aware network (Section 5.3) adds a high-level *snippet*
action: instead of composing a query operation parameter by parameter, the
agent may pick a snippet — a partially instantiated operation derived from
one operational specification — and only choose its remaining free
parameters.  For example the specification ``[F, country, eq, (?<X>.*)]``
yields the snippet ``F, country, eq, <term>`` whose only free head is the
filter term.

Disjunctive regex fields (``SUM|AVG``) expand into one snippet per option,
exactly as described in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.explore.action_space import ActionChoice, ActionSpace
from repro.explore.operations import FilterOperation, GroupAggOperation, Operation
from repro.ldx.ast import LdxQuery
from repro.ldx.patterns import FIELD_LITERAL, FIELD_REGEX, FieldPattern, OperationPattern

#: Field roles per operation kind, aligned with the pattern's positional fields.
FILTER_ROLES = ("attr", "op", "term")
GROUP_ROLES = ("group_attr", "agg_func", "agg_attr")


@dataclass(frozen=True)
class Snippet:
    """A partially specified operation: fixed fields plus named free parameters."""

    kind: str  # "F" or "G"
    fixed: dict[str, str] = field(default_factory=dict)
    free: tuple[str, ...] = ()
    source_node: str = ""

    def describe(self) -> str:
        roles = FILTER_ROLES if self.kind == "F" else GROUP_ROLES
        parts = [self.kind]
        for role in roles:
            parts.append(self.fixed.get(role, "*"))
        return ",".join(parts)

    def __hash__(self) -> int:
        return hash((self.kind, tuple(sorted(self.fixed.items())), self.free, self.source_node))


def _field_options(field_pattern: FieldPattern) -> list[str] | None:
    """Concrete options a field pins down (None when the field is free)."""
    if field_pattern.kind == FIELD_LITERAL:
        return [field_pattern.value]
    if field_pattern.kind == FIELD_REGEX and "|" in field_pattern.value:
        options = [part.strip() for part in field_pattern.value.split("|")]
        if all(option and not any(ch in option for ch in ".*+?[](){}^$\\") for option in options):
            return options
    return None


def snippets_from_pattern(pattern: OperationPattern, node_name: str = "") -> list[Snippet]:
    """Expand one operational specification into snippets (one per disjunct combination)."""
    if pattern.kind not in ("F", "G"):
        return []
    roles = FILTER_ROLES if pattern.kind == "F" else GROUP_ROLES
    per_field: list[list[Optional[str]]] = []
    for index in range(len(roles)):
        field_pattern = (
            pattern.fields[index] if index < len(pattern.fields) else FieldPattern("any")
        )
        options = _field_options(field_pattern)
        per_field.append(options if options is not None else [None])

    snippets: list[Snippet] = []

    def expand(index: int, fixed: dict[str, str]) -> None:
        if index == len(roles):
            free = tuple(role for role in roles if role not in fixed)
            snippets.append(
                Snippet(kind=pattern.kind, fixed=dict(fixed), free=free, source_node=node_name)
            )
            return
        for option in per_field[index]:
            if option is None:
                expand(index + 1, fixed)
            else:
                expand(index + 1, {**fixed, roles[index]: option})

    expand(0, {})
    return snippets


def derive_snippets(query: LdxQuery) -> list[Snippet]:
    """All snippets of a query: one per operational specification and disjunct.

    Symmetric specifications (e.g. the two identical group-by patterns of a
    comparison query) intentionally keep their own snippet neurons, exactly as
    in Figure 2, so the per-state guidance can address each named node.
    """
    snippets: list[Snippet] = []
    for spec in query.operational_specs():
        snippets.extend(snippets_from_pattern(spec.operation, spec.name))
    return snippets


class SnippetLibrary:
    """Binds snippets to a concrete :class:`ActionSpace`.

    The library extends the action space's vocabularies so every fixed
    snippet value is representable (e.g. a literal filter term required by
    the specifications but absent from the frequency-derived term list), and
    converts a snippet choice plus sampled free-parameter heads into the
    equivalent :class:`ActionChoice`.
    """

    def __init__(self, query: LdxQuery, action_space: ActionSpace):
        self.query = query
        self.action_space = action_space
        self.snippets = derive_snippets(query)
        self._extend_vocabularies()

    def __len__(self) -> int:
        return len(self.snippets)

    def _extend_vocabularies(self) -> None:
        space = self.action_space
        for snippet in self.snippets:
            if snippet.kind == "F":
                attr = snippet.fixed.get("attr")
                op = snippet.fixed.get("op")
                term = snippet.fixed.get("term")
                if op and op not in space.filter_operators:
                    space.filter_operators.append(op)
                if attr and attr in space.terms and term is not None:
                    if space.index_of_term(attr, term) is None:
                        space.terms[attr].append(term)
            else:
                group_attr = snippet.fixed.get("group_attr")
                agg_func = snippet.fixed.get("agg_func")
                agg_attr = snippet.fixed.get("agg_attr")
                if group_attr and group_attr not in space.group_attributes:
                    if group_attr in space.attributes:
                        space.group_attributes.append(group_attr)
                if agg_func and agg_func not in space.agg_functions:
                    space.agg_functions.append(agg_func)
                if agg_attr and agg_attr not in space.agg_attributes:
                    if agg_attr in space.attributes:
                        space.agg_attributes.append(agg_attr)

    # -- choice construction -----------------------------------------------------------------
    def to_action_choice(self, snippet_index: int, free_indices: dict[str, int]) -> ActionChoice:
        """Resolve a snippet selection into a full factored action choice.

        Fixed snippet fields override the corresponding heads; free fields are
        filled from the sampled head indices in *free_indices* (keys follow the
        base head names, e.g. ``filter_term``).
        """
        snippet = self.snippets[snippet_index % len(self.snippets)]
        space = self.action_space
        if snippet.kind == "F":
            attr = snippet.fixed.get("attr")
            attr_index = (
                space.index_of_attribute(attr)
                if attr is not None
                else free_indices.get("filter_attr", 0)
            )
            resolved_attr = space.attributes[attr_index % len(space.attributes)]
            op = snippet.fixed.get("op")
            op_index = (
                space.index_of_operator(op)
                if op is not None
                else free_indices.get("filter_op", 0)
            )
            term = snippet.fixed.get("term")
            if term is not None:
                term_index = space.index_of_term(resolved_attr, term)
                if term_index is None:
                    term_index = free_indices.get("filter_term", 0)
            else:
                term_index = free_indices.get("filter_term", 0)
            return ActionChoice(
                action_type=1,
                filter_attr=attr_index,
                filter_op=op_index,
                filter_term=term_index,
            )
        group_attr = snippet.fixed.get("group_attr")
        group_index = (
            space.index_of_group_attribute(group_attr)
            if group_attr is not None
            else free_indices.get("group_attr", 0)
        )
        agg_func = snippet.fixed.get("agg_func")
        agg_index = (
            space.index_of_agg(agg_func)
            if agg_func is not None
            else free_indices.get("agg_func", 0)
        )
        agg_attr = snippet.fixed.get("agg_attr")
        agg_attr_index = (
            space.index_of_agg_attribute(agg_attr)
            if agg_attr is not None
            else free_indices.get("agg_attr", 0)
        )
        return ActionChoice(
            action_type=2,
            group_attr=group_index,
            agg_func=agg_index,
            agg_attr=agg_attr_index,
        )

    def example_operation(self, snippet_index: int) -> Operation:
        """A representative concrete operation for the snippet (testing/diagnostics)."""
        choice = self.to_action_choice(snippet_index, {})
        return self.action_space.decode(choice)

    # -- logit biasing --------------------------------------------------------------------
    def preferred_indices(self) -> dict[str, set[int]]:
        """Head indices that occur in any snippet's fixed fields.

        The specification-aware policy uses this to bias the ordinary
        parameter heads toward values that can appear in compliant sessions.
        """
        space = self.action_space
        preferred: dict[str, set[int]] = {
            "filter_attr": set(),
            "filter_op": set(),
            "group_attr": set(),
            "agg_func": set(),
            "agg_attr": set(),
        }
        for snippet in self.snippets:
            if snippet.kind == "F":
                attr = snippet.fixed.get("attr")
                if attr in space.attributes:
                    preferred["filter_attr"].add(space.index_of_attribute(attr))
                op = snippet.fixed.get("op")
                if op in space.filter_operators:
                    preferred["filter_op"].add(space.index_of_operator(op))
            else:
                group_attr = snippet.fixed.get("group_attr")
                if group_attr in space.group_attributes:
                    preferred["group_attr"].add(space.index_of_group_attribute(group_attr))
                agg_func = snippet.fixed.get("agg_func")
                if agg_func in space.agg_functions:
                    preferred["agg_func"].add(space.index_of_agg(agg_func))
                agg_attr = snippet.fixed.get("agg_attr")
                if agg_attr in space.agg_attributes:
                    preferred["agg_attr"].add(space.index_of_agg_attribute(agg_attr))
        return preferred
