"""The specification-aware policy (Section 5.3, Figure 2).

The network derives part of its structure from the LDX specifications:

* an extra value in the operation-type head — the high-level **snippet**
  action;
* a **snippet-selection** head ``sigma_snp`` with one entry per snippet
  derived from the operational specifications;
* a per-state **guidance mechanism** implementing the paper's description of
  the constrained-DRL-inspired design: "rather than overriding actions
  externally, we encourage the agent to perform compliant queries by
  dynamically shifting the action distribution probabilities toward queries
  that are more likely to be included in a specifications-compliant
  exploration session".  Concretely, using the (relaxed) LDX matcher over the
  ongoing session the policy determines which specification node should be
  realised next, biases the operation-type head toward *operating* vs
  *backing up*, biases the snippet head toward snippets derived from that
  specification, and biases the free-parameter heads toward values that are
  consistent with already-bound continuity variables.

A snippet choice is resolved back into a fully factored
:class:`~repro.explore.action_space.ActionChoice`, so the environment and the
trainer stay unchanged.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.explore.action_space import ActionChoice, ActionSpace, HEAD_ORDER
from repro.explore.environment import ExplorationEnvironment
from repro.ldx.ast import LdxQuery, NodeSpec
from repro.ldx.patterns import FIELD_CONTINUITY, OperationPattern
from repro.ldx.verifier import best_partial_structural_assignment
from repro.rl.network import MultiHeadPolicyNetwork
from repro.rl.policy import CategoricalPolicy

from .snippets import FILTER_ROLES, GROUP_ROLES, SnippetLibrary

#: Index of the extra "snippet" entry in the extended operation-type head.
SNIPPET_ACTION_INDEX = 3

#: Name of the snippet-selection head.
SNIPPET_HEAD = "snippet_select"

#: Index of the back action in the operation-type head.
BACK_ACTION_INDEX = 0

#: Head names corresponding to each pattern field role.
_FILTER_ROLE_HEADS = {"attr": "filter_attr", "op": "filter_op", "term": "filter_term"}
_GROUP_ROLE_HEADS = {
    "group_attr": "group_attr",
    "agg_func": "agg_func",
    "agg_attr": "agg_attr",
}


class SpecificationAwarePolicy(CategoricalPolicy):
    """A categorical policy whose head layout and biases derive from the LDX query."""

    def __init__(
        self,
        observation_size: int,
        action_space: ActionSpace,
        query: LdxQuery,
        hidden_sizes: tuple[int, ...] = (64, 64),
        seed: int = 0,
        snippet_bias: float = 2.5,
        parameter_bias: float = 1.0,
        structure_bias: float = 6.0,
        continuity_bias: float = 5.0,
    ):
        self.action_space = action_space
        self.query = query
        self.library = SnippetLibrary(query, action_space)
        head_sizes = dict(action_space.head_sizes())
        head_sizes["action_type"] = head_sizes["action_type"] + 1  # + snippet action
        head_sizes[SNIPPET_HEAD] = max(1, len(self.library))
        network = MultiHeadPolicyNetwork(
            observation_size=observation_size,
            head_sizes=head_sizes,
            hidden_sizes=hidden_sizes,
            seed=seed,
        )
        self.snippet_bias = snippet_bias
        self.parameter_bias = parameter_bias
        self.structure_bias = structure_bias
        self.continuity_bias = continuity_bias
        #: Set by :class:`~repro.cdrl.agent.LinxCdrlAgent` so the policy can
        #: inspect the ongoing session when computing the guidance.
        self.environment: Optional[ExplorationEnvironment] = None
        self._preferred = self.library.preferred_indices()
        #: Guidance memo: the biases are a pure function of the session's
        #: tree structure (operation signatures) and cursor position, and
        #: episodes keep revisiting the same states -- every episode starts
        #: from the root state, and invalid steps repeat the previous one.
        self._guidance_memo: dict[tuple, dict[str, np.ndarray]] = {}
        #: Same idea one level up: the complete per-state decision biases
        #: (guidance plus folded validity masks, i.e. what `decision_biases`
        #: returns) keyed by the same session-state key.  Both dicts may be
        #: replaced by pooled ones (`adopt_shared_guidance`) so concurrent
        #: batched requests on the same (dataset, query) share the work.
        self._decision_memo: dict[tuple, dict[str, np.ndarray]] = {}
        super().__init__(network, rng=np.random.default_rng(seed), bias_provider=None)

    def adopt_shared_guidance(self, state: dict) -> None:
        """Swap the guidance/decision memos for pooled ones (see the batcher's
        ``SharedExplorationContext.guidance_state``).  Entries are pure
        functions of the memo key, so cross-request sharing is bit-identical;
        dict access is GIL-atomic and values are treated as immutable."""
        self._guidance_memo = state["guidance"]
        self._decision_memo = state["decisions"]

    #: Bound on the guidance memo; cleared wholesale when exceeded.
    _GUIDANCE_MEMO_MAX = 4096

    # -- bias computation (once per step) --------------------------------------------------
    @staticmethod
    def _session_state_key(session) -> tuple:
        """Hashable (cursor, tree-structure) key identifying a guidance state."""
        parts: list[tuple[int, tuple[str, ...]]] = []
        cursor = -1
        stack: list[tuple] = [(session.root, -1)]
        while stack:
            node, parent = stack.pop()
            position = len(parts)
            if node is session.current:
                cursor = position
            parts.append((parent, node.signature()))
            for child in reversed(node.children):
                stack.append((child, position))
        return (cursor, tuple(parts))

    def decision_biases(self) -> dict[str, np.ndarray]:
        """Per-state decision biases (guidance + masks), memoised by state.

        The validity masks are a pure function of the current view, which —
        for a fixed dataset — is itself determined by the session's tree
        structure, so the complete result is memoised under the same key as
        the guidance.  The returned dict and its arrays are shared and must
        be treated as read-only (every consumer already copies before
        mutating).
        """
        if self.environment is None:
            return super().decision_biases()
        key = self._session_state_key(self.environment.session)
        cached = self._decision_memo.get(key)
        if cached is None:
            cached = super().decision_biases()
            if len(self._decision_memo) >= self._GUIDANCE_MEMO_MAX:
                self._decision_memo.clear()
            self._decision_memo[key] = cached
        return cached

    def _collect_biases(self) -> dict[str, np.ndarray]:
        """Static specification biases plus the per-state guidance (memoised).

        Returns a fresh dict per call (downstream mask folding rebinds
        entries) but the bias arrays themselves are shared and treated as
        read-only by every consumer.
        """
        if self.environment is None:
            return self._compute_biases()
        key = self._session_state_key(self.environment.session)
        cached = self._guidance_memo.get(key)
        if cached is None:
            cached = self._compute_biases()
            if len(self._guidance_memo) >= self._GUIDANCE_MEMO_MAX:
                self._guidance_memo.clear()
            self._guidance_memo[key] = cached
        return dict(cached)

    def _compute_biases(self) -> dict[str, np.ndarray]:
        biases: dict[str, np.ndarray] = {}
        sizes = self.network.head_sizes

        action_bias = np.zeros(sizes["action_type"])
        if len(self.library) > 0:
            action_bias[SNIPPET_ACTION_INDEX] = self.snippet_bias
        biases["action_type"] = action_bias

        for head, indices in self._preferred.items():
            if not indices or head not in sizes:
                continue
            bias = np.zeros(sizes[head])
            for index in indices:
                if index < len(bias):
                    bias[index] = self.parameter_bias
            biases[head] = bias

        self._apply_guidance(biases)
        return biases

    def _apply_guidance(self, biases: dict[str, np.ndarray]) -> None:
        """Shift distributions toward the specification node that should come next."""
        if self.environment is None:
            return
        session = self.environment.session
        tree = session.to_tree()
        assignment, assigned, named = best_partial_structural_assignment(tree, self.query)
        if named == 0:
            return
        bindings = self._continuity_bindings(assignment, tree)
        pending = self._pending_spec(assignment)
        sizes = self.network.head_sizes
        if pending is None:
            return
        target = self._target_parent_node(pending.name, assignment, tree, session)
        action_bias = biases.setdefault("action_type", np.zeros(sizes["action_type"]))
        if target is None or target is session.current:
            action_bias[SNIPPET_ACTION_INDEX] += self.structure_bias
            action_bias[BACK_ACTION_INDEX] -= self.structure_bias
            self._bias_toward_spec(pending, bindings, biases)
        else:
            action_bias[BACK_ACTION_INDEX] += self.structure_bias
            action_bias[SNIPPET_ACTION_INDEX] -= self.structure_bias

    # -- guidance helpers -------------------------------------------------------------------
    def _pending_spec(self, assignment) -> Optional[NodeSpec]:
        """The next unrealised named node, following the specification pre-order."""
        for name in self.query.preorder_named_nodes():
            if name not in assignment.nodes:
                spec = self.query.spec_for(name)
                if spec is not None:
                    return spec
                return NodeSpec(name=name)
        return None

    def _declared_parent(self, name: str) -> Optional[str]:
        for spec in self.query.specs:
            for clause in spec.structure:
                if name in clause.named:
                    return spec.name
        return None

    def _target_parent_node(self, pending_name: str, assignment, tree, session):
        """The session node under which the pending specification node belongs."""
        parent_name = self._declared_parent(pending_name)
        while parent_name is not None and parent_name not in assignment.nodes:
            parent_name = self._declared_parent(parent_name)
        target_tree_node = assignment.nodes.get(parent_name or self.query.root_name())
        if target_tree_node is None:
            return None
        tree_nodes = list(tree.preorder())
        session_nodes = list(session.root.preorder())
        for position, node in enumerate(tree_nodes):
            if node is target_tree_node and position < len(session_nodes):
                return session_nodes[position]
        return None

    def _continuity_bindings(self, assignment, tree) -> dict[str, str]:
        """Continuity values already pinned down by realised specification nodes."""
        bindings: dict[str, str] = {}
        for spec in self.query.operational_specs():
            node = assignment.nodes.get(spec.name)
            if node is None or spec.operation is None:
                continue
            signature = _node_signature(node)
            pattern = spec.operation.substitute(bindings)
            if pattern.matches(signature, bindings):
                bindings.update(pattern.capture(signature, bindings))
        return bindings

    def _bias_toward_spec(
        self,
        spec: NodeSpec,
        bindings: dict[str, str],
        biases: dict[str, np.ndarray],
    ) -> None:
        """Bias snippet selection and free-parameter heads toward *spec*."""
        sizes = self.network.head_sizes
        if len(self.library) > 0 and SNIPPET_HEAD in sizes:
            snippet_bias = biases.setdefault(SNIPPET_HEAD, np.zeros(sizes[SNIPPET_HEAD]))
            for index, snippet in enumerate(self.library.snippets):
                if snippet.source_node == spec.name and index < len(snippet_bias):
                    snippet_bias[index] += self.structure_bias
        if spec.operation is None:
            return
        pattern = spec.operation.substitute(bindings)
        role_heads = _FILTER_ROLE_HEADS if pattern.kind == "F" else _GROUP_ROLE_HEADS
        roles = FILTER_ROLES if pattern.kind == "F" else GROUP_ROLES
        for position, role in enumerate(roles):
            head = role_heads[role]
            if head not in sizes:
                continue
            index = self._preferred_index_for_field(pattern, position, role)
            if index is None:
                continue
            bias = biases.setdefault(head, np.zeros(sizes[head]))
            if index < len(bias):
                bias[index] += self.continuity_bias

    def _preferred_index_for_field(
        self, pattern: OperationPattern, position: int, role: str
    ) -> Optional[int]:
        """Head index pinned by a literal field (including substituted continuity values)."""
        if position >= len(pattern.fields):
            return None
        field = pattern.fields[position]
        if field.kind == FIELD_CONTINUITY or not field.is_specified or "|" in field.value:
            return None
        value = field.value
        space = self.action_space
        if role == "attr":
            return space.index_of_attribute(value) if value in space.attributes else None
        if role == "op":
            return space.index_of_operator(value) if value in space.filter_operators else None
        if role == "term":
            attr_field = pattern.fields[0] if pattern.fields else None
            attr = attr_field.value if attr_field is not None and attr_field.is_specified else None
            if attr is None:
                return None
            return space.index_of_term(attr, value)
        if role == "group_attr":
            return (
                space.index_of_group_attribute(value)
                if value in space.group_attributes
                else None
            )
        if role == "agg_func":
            return space.index_of_agg(value) if value in space.agg_functions else None
        if role == "agg_attr":
            return (
                space.index_of_agg_attribute(value) if value in space.agg_attributes else None
            )
        return None

    # -- decoding ---------------------------------------------------------------------------
    def indices_to_choice(self, indices: dict[str, int]) -> ActionChoice:
        """Map sampled head indices to an executable action choice.

        Non-snippet action types behave exactly as in the base action space;
        the snippet action routes through the snippet library, using the
        sampled parameter heads only for the snippet's free parameters.
        """
        action_type = indices.get("action_type", 0)
        if action_type == SNIPPET_ACTION_INDEX and len(self.library) > 0:
            return self.library.to_action_choice(indices.get(SNIPPET_HEAD, 0), indices)
        base = {name: indices.get(name, 0) for name in HEAD_ORDER}
        base["action_type"] = min(action_type, 2)
        return ActionChoice(**base)


def _node_signature(node) -> tuple[str, ...]:
    label = node.label
    if hasattr(label, "signature"):
        return tuple(str(part) for part in label.signature())
    if isinstance(label, (tuple, list)):
        return tuple(str(part) for part in label)
    return (str(label),)


def build_basic_policy(
    observation_size: int,
    action_space: ActionSpace,
    hidden_sizes: tuple[int, ...] = (64, 64),
    seed: int = 0,
) -> CategoricalPolicy:
    """The plain (non specification-aware) policy used by ATENA and the ablations."""
    network = MultiHeadPolicyNetwork(
        observation_size=observation_size,
        head_sizes=action_space.head_sizes(),
        hidden_sizes=hidden_sizes,
        seed=seed,
    )
    return CategoricalPolicy(network, rng=np.random.default_rng(seed))
