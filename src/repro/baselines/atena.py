"""ATENA baseline: goal-agnostic automated data exploration [6].

ATENA optimises only the generic exploration reward and therefore produces
the same session for a dataset regardless of the analytical goal.  It reuses
the exploration environment and the policy-gradient trainer with the plain
(non specification-aware) network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.cdrl.agent import _resolve_num_envs
from repro.cdrl.spec_network import build_basic_policy
from repro.dataframe.table import DataTable
from repro.explore.action_space import ActionSpace
from repro.explore.cache import ExecutionCache
from repro.explore.environment import ExplorationEnvironment, GenericRewardStrategy
from repro.explore.reward import GenericExplorationReward
from repro.explore.rollouts import VectorEnvironment
from repro.explore.session import ExplorationSession
from repro.rl.trainer import PolicyGradientTrainer, TrainerConfig, TrainingHistory


@dataclass(frozen=True)
class AtenaConfig:
    """ATENA training configuration."""

    episode_length: int = 6
    episodes: int = 300
    hidden_sizes: tuple[int, ...] = (64, 64)
    seed: int = 0
    #: Environments rolled out in lock-step per training wave (> 1 batches
    #: the policy forward over one shared execution cache).
    num_envs: int = 1
    trainer: TrainerConfig = field(default_factory=TrainerConfig)


@dataclass
class AtenaResult:
    """ATENA's output: the best goal-agnostic session and its training history."""

    session: ExplorationSession
    utility_score: float
    history: TrainingHistory


class AtenaAgent:
    """The goal-agnostic DRL exploration agent of [6]."""

    def __init__(
        self,
        dataset: DataTable,
        config: AtenaConfig | None = None,
        cache: ExecutionCache | None = None,
    ):
        self.dataset = dataset
        self.config = config or AtenaConfig()
        self.action_space = ActionSpace(dataset)
        # The generic reward strategy is stateless (its interestingness memo
        # is content-keyed), so one instance serves every sibling
        # environment of a batched rollout wave.
        reward_strategy = GenericRewardStrategy()
        self.environment = ExplorationEnvironment(
            dataset=dataset,
            episode_length=self.config.episode_length,
            reward_strategy=reward_strategy,
            action_space=self.action_space,
            cache=cache,
        )
        self.vector_environment = None
        self.num_envs = _resolve_num_envs(
            self.config.num_envs, self.config.trainer.num_envs
        )
        if self.num_envs > 1:
            siblings = [self.environment] + [
                ExplorationEnvironment(
                    dataset=dataset,
                    episode_length=self.config.episode_length,
                    reward_strategy=reward_strategy,
                    action_space=self.action_space,
                    cache=self.environment.cache,
                )
                for _ in range(self.num_envs - 1)
            ]
            self.vector_environment = VectorEnvironment(siblings)
        self.policy = build_basic_policy(
            observation_size=self.environment.observation_size(),
            action_space=self.action_space,
            hidden_sizes=self.config.hidden_sizes,
            seed=self.config.seed,
        )
        trainer_config = TrainerConfig(
            episodes=self.config.episodes,
            seed=self.config.seed,
            learning_rate=self.config.trainer.learning_rate,
            entropy_coefficient=self.config.trainer.entropy_coefficient,
            batch_episodes=self.config.trainer.batch_episodes,
            discount=self.config.trainer.discount,
            greedy_eval_every=self.config.trainer.greedy_eval_every,
            num_envs=self.num_envs,
        )
        self.trainer = PolicyGradientTrainer(
            environment=self.environment,
            policy=self.policy,
            config=trainer_config,
            vector_environment=self.vector_environment,
        )
        self._scorer = GenericExplorationReward()

    def run(
        self,
        episodes: int | None = None,
        episode_callback: Optional[
            Callable[[int, float, ExplorationSession], None]
        ] = None,
    ) -> AtenaResult:
        """Train and return the best goal-agnostic session found."""
        history = self.trainer.train(episodes=episodes, callback=episode_callback)
        session, _ = self.trainer.best_session(attempts=5)
        return AtenaResult(
            session=session,
            utility_score=self._scorer.session_score(session),
            history=history,
        )

    def generate(self, episodes: int | None = None) -> ExplorationSession:
        """Train and return only the generated session."""
        return self.run(episodes=episodes).session
