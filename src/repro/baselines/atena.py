"""ATENA baseline: goal-agnostic automated data exploration [6].

ATENA optimises only the generic exploration reward and therefore produces
the same session for a dataset regardless of the analytical goal.  It reuses
the exploration environment and the policy-gradient trainer with the plain
(non specification-aware) network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.cdrl.spec_network import build_basic_policy
from repro.dataframe.table import DataTable
from repro.explore.action_space import ActionSpace
from repro.explore.cache import ExecutionCache
from repro.explore.environment import ExplorationEnvironment, GenericRewardStrategy
from repro.explore.reward import GenericExplorationReward
from repro.explore.session import ExplorationSession
from repro.rl.trainer import PolicyGradientTrainer, TrainerConfig, TrainingHistory


@dataclass(frozen=True)
class AtenaConfig:
    """ATENA training configuration."""

    episode_length: int = 6
    episodes: int = 300
    hidden_sizes: tuple[int, ...] = (64, 64)
    seed: int = 0
    trainer: TrainerConfig = field(default_factory=TrainerConfig)


@dataclass
class AtenaResult:
    """ATENA's output: the best goal-agnostic session and its training history."""

    session: ExplorationSession
    utility_score: float
    history: TrainingHistory


class AtenaAgent:
    """The goal-agnostic DRL exploration agent of [6]."""

    def __init__(
        self,
        dataset: DataTable,
        config: AtenaConfig | None = None,
        cache: ExecutionCache | None = None,
    ):
        self.dataset = dataset
        self.config = config or AtenaConfig()
        self.action_space = ActionSpace(dataset)
        self.environment = ExplorationEnvironment(
            dataset=dataset,
            episode_length=self.config.episode_length,
            reward_strategy=GenericRewardStrategy(),
            action_space=self.action_space,
            cache=cache,
        )
        self.policy = build_basic_policy(
            observation_size=self.environment.observation_size(),
            action_space=self.action_space,
            hidden_sizes=self.config.hidden_sizes,
            seed=self.config.seed,
        )
        trainer_config = TrainerConfig(
            episodes=self.config.episodes, seed=self.config.seed
        )
        self.trainer = PolicyGradientTrainer(
            environment=self.environment, policy=self.policy, config=trainer_config
        )
        self._scorer = GenericExplorationReward()

    def run(
        self,
        episodes: int | None = None,
        episode_callback: Optional[
            Callable[[int, float, ExplorationSession], None]
        ] = None,
    ) -> AtenaResult:
        """Train and return the best goal-agnostic session found."""
        history = self.trainer.train(episodes=episodes, callback=episode_callback)
        session, _ = self.trainer.best_session(attempts=5)
        return AtenaResult(
            session=session,
            utility_score=self._scorer.session_score(session),
            history=history,
        )

    def generate(self, episodes: int | None = None) -> ExplorationSession:
        """Train and return only the generated session."""
        return self.run(episodes=episodes).session
