"""Google-Sheets-Explorer-like baseline.

The commercial tool accepts only limited specifications: the user may select
columns of interest and a data subset, and the tool then produces automatic
univariate summaries over that selection (Section 7.3).  The simulation
accepts the same limited specification (columns + one optional subset
predicate derived from the goal's LDX) and emits one aggregation per selected
column — it cannot express comparisons or multi-step narratives, which is
what limits its relevance scores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dataframe.table import DataTable
from repro.explore.operations import BackOperation, FilterOperation, GroupAggOperation
from repro.explore.session import ExplorationSession, session_from_operations
from repro.ldx.ast import LdxQuery
from repro.ldx.patterns import FIELD_LITERAL


@dataclass(frozen=True)
class SheetsSpecification:
    """The limited specification the tool supports: columns and one subset."""

    columns: tuple[str, ...] = ()
    subset: Optional[tuple[str, str, str]] = None  # (attr, op, term)


def specification_from_ldx(query: LdxQuery, dataset: DataTable) -> SheetsSpecification:
    """Derive the closest expressible specification from a gold LDX query.

    Mirrors the paper's protocol of composing the tool's settings w.r.t. the
    LDX query: columns mentioned in the specifications are selected, and the
    first fully-literal filter becomes the subset.
    """
    columns: list[str] = []
    subset: Optional[tuple[str, str, str]] = None
    for spec in query.operational_specs():
        pattern = spec.operation
        fields = list(pattern.fields)
        if fields and fields[0].kind == FIELD_LITERAL and fields[0].value in dataset.columns:
            if fields[0].value not in columns:
                columns.append(fields[0].value)
            if (
                pattern.kind == "F"
                and subset is None
                and len(fields) >= 3
                and fields[1].kind == FIELD_LITERAL
                and fields[2].kind == FIELD_LITERAL
            ):
                subset = (fields[0].value, fields[1].value, fields[2].value)
    return SheetsSpecification(columns=tuple(columns), subset=subset)


class SheetsExplorerBaseline:
    """Univariate auto-exploration over a limited user specification."""

    name = "Google Sheets"

    def __init__(self, max_operations: int = 5):
        self.max_operations = max_operations

    def generate(
        self, dataset: DataTable, specification: SheetsSpecification
    ) -> ExplorationSession:
        operations: list[object] = []
        if specification.subset is not None:
            attr, op, term = specification.subset
            if attr in dataset.columns:
                operations.append(FilterOperation(attr, op, term))
        columns = [c for c in specification.columns if c in dataset.columns]
        if not columns:
            columns = dataset.categorical_columns()[:2]
        produced = 0
        for column in columns:
            if produced >= self.max_operations:
                break
            col = dataset.column(column)
            if col.is_numeric:
                group_attr = next(
                    (c for c in dataset.categorical_columns() if c != column),
                    dataset.columns[0],
                )
                operations.append(GroupAggOperation(group_attr, "mean", column))
            else:
                operations.append(GroupAggOperation(column, "count", column))
            operations.append(BackOperation(1))
            produced += 1
        return session_from_operations(dataset, operations)
