"""ChatGPT-direct baseline: ask the (simulated) LLM for a whole notebook.

In the user study (Section 7.3) one baseline asks GPT-3.5 to produce an
entire exploration notebook directly from the goal.  The paper observes that
such notebooks consist mostly of descriptive statistics and simple
aggregations whose relevance to the specific goal is limited.  The offline
simulation mirrors that behaviour: the baseline emits a fixed recipe of
overview operations (value counts of the first categorical columns, means of
the numeric columns) plus at most one goal-derived filter when an attribute
is explicitly mentioned in the goal text.
"""

from __future__ import annotations

from repro.dataframe.table import DataTable
from repro.explore.operations import BackOperation, FilterOperation, GroupAggOperation
from repro.explore.session import ExplorationSession, session_from_operations


class ChatGptDirectBaseline:
    """Generates a descriptive-statistics style notebook from the goal text."""

    name = "ChatGPT"

    def __init__(self, max_operations: int = 6):
        self.max_operations = max_operations

    def generate(self, dataset: DataTable, goal: str) -> ExplorationSession:
        """Build the descriptive session for *dataset* and *goal*."""
        operations: list[object] = []
        goal_lower = goal.lower()
        categorical = dataset.categorical_columns()
        numeric = dataset.numeric_columns()

        # One goal-derived filter when the goal names a column and a quoted value.
        mentioned = [column for column in dataset.columns if column.lower() in goal_lower]
        if mentioned:
            column = mentioned[0]
            values = dataset.column(column).value_counts()
            mentioned_value = next(
                (value for value in values if str(value).lower() in goal_lower), None
            )
            if mentioned_value is not None:
                operations.append(FilterOperation(column, "eq", mentioned_value))
                operations.append(BackOperation(1))

        # Descriptive statistics: value counts over categorical columns.
        for column in categorical[:3]:
            operations.append(GroupAggOperation(column, "count", column))
            operations.append(BackOperation(1))
        # Means of numeric columns grouped by the first categorical column.
        if categorical and numeric:
            operations.append(GroupAggOperation(categorical[0], "mean", numeric[0]))
            operations.append(BackOperation(1))

        query_ops = [op for op in operations if not isinstance(op, BackOperation)]
        if len(query_ops) > self.max_operations:
            # Trim while keeping the interleaved back operations consistent.
            trimmed: list[object] = []
            count = 0
            for operation in operations:
                if not isinstance(operation, BackOperation):
                    count += 1
                    if count > self.max_operations:
                        break
                trimmed.append(operation)
            operations = trimmed
        return session_from_operations(dataset, operations)
