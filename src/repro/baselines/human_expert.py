"""Human-expert baseline.

The user study's upper bound is a notebook manually composed by an expert
data scientist for each goal (Section 7.3).  Offline, the expert is
simulated as an oracle that *knows the gold LDX specification* and composes
the best concrete session satisfying it: it enumerates candidate parameter
instantiations for the free fields and keeps the combination with the
highest generic exploration utility.  This is exactly the behaviour an
expert exhibits in the paper — relevant by construction and slightly better
tuned than the automatic systems.
"""

from __future__ import annotations

from repro.dataframe.table import DataTable
from repro.explore.executor import ExecutionError, QueryExecutor
from repro.explore.operations import BackOperation, FilterOperation, GroupAggOperation
from repro.explore.reward import GenericExplorationReward
from repro.explore.session import ExplorationSession, session_from_operations
from repro.ldx.ast import LdxQuery
from repro.ldx.parser import parse_ldx
from repro.ldx.patterns import FIELD_LITERAL, OperationPattern
from repro.ldx.verifier import verify


class HumanExpertBaseline:
    """Oracle baseline that composes a compliant, high-utility session by search."""

    name = "Human Expert"

    def __init__(self, candidate_values_per_slot: int = 4, candidate_columns: int = 3):
        self.candidate_values_per_slot = candidate_values_per_slot
        self.candidate_columns = candidate_columns
        self._scorer = GenericExplorationReward()
        self._executor = QueryExecutor()

    # -- candidate enumeration ---------------------------------------------------------
    def _candidate_operations(
        self, dataset: DataTable, pattern: OperationPattern
    ) -> list[object]:
        fields = list(pattern.fields)
        if pattern.kind == "F":
            attr_candidates = self._attr_candidates(dataset, fields, 0, categorical_first=True)
            operations = []
            for attr in attr_candidates:
                op = (
                    fields[1].value
                    if len(fields) > 1 and fields[1].kind == FIELD_LITERAL
                    else "eq"
                )
                term_candidates = self._term_candidates(dataset, attr, fields)
                for term in term_candidates:
                    operations.append(FilterOperation(attr, op, term))
            return operations
        group_candidates = self._attr_candidates(dataset, fields, 0, categorical_first=True)
        agg_func = (
            fields[1].value if len(fields) > 1 and fields[1].kind == FIELD_LITERAL else "count"
        )
        operations = []
        for group_attr in group_candidates:
            if agg_func == "count":
                operations.append(GroupAggOperation(group_attr, "count", group_attr))
                continue
            for agg_attr in (dataset.numeric_columns() or [group_attr])[:2]:
                operations.append(GroupAggOperation(group_attr, agg_func, agg_attr))
        return operations

    def _attr_candidates(self, dataset, fields, position, categorical_first=False) -> list[str]:
        if len(fields) > position and fields[position].kind == FIELD_LITERAL:
            value = fields[position].value
            return [value] if value in dataset.columns else dataset.columns[:1]
        columns = dataset.categorical_columns() if categorical_first else dataset.columns
        candidates = [c for c in columns if 1 < dataset.column(c).nunique() <= 40]
        return (candidates or dataset.columns)[: self.candidate_columns]

    def _term_candidates(self, dataset, attr, fields) -> list[object]:
        if len(fields) > 2 and fields[2].kind == FIELD_LITERAL:
            return [fields[2].value]
        counts = dataset.column(attr).value_counts()
        ranked = sorted(counts.items(), key=lambda item: -item[1])
        return [value for value, _ in ranked[: self.candidate_values_per_slot]]

    # -- composition --------------------------------------------------------------------
    def generate(self, dataset: DataTable, query: LdxQuery | str) -> ExplorationSession:
        """Compose the highest-utility compliant session found by greedy search."""
        if isinstance(query, str):
            query = parse_ldx(query)
        order = query.preorder_named_nodes()
        parent_of: dict[str, str] = {}
        for spec in query.specs:
            for clause in spec.structure:
                for child in clause.named:
                    parent_of[child] = spec.name

        best_session: ExplorationSession | None = None
        best_score = float("-inf")
        for seed_offset in range(self.candidate_values_per_slot):
            operations: list[object] = []
            depth_of: dict[str, int] = {query.root_name(): 0}
            previous_depth = 0
            bindings: dict[str, str] = {}
            session = ExplorationSession(dataset)
            feasible = True
            for name in order:
                spec = query.spec_for(name)
                pattern = spec.operation if spec is not None else None
                parent = parent_of.get(name, query.root_name())
                depth = depth_of.get(parent, 0) + 1
                depth_of[name] = depth
                # Navigate back to the parent's depth before operating.
                for _ in range(max(0, previous_depth - (depth - 1))):
                    operations.append(BackOperation(1))
                    session.go_back(1)
                candidates = (
                    self._candidate_operations(dataset, pattern.substitute(bindings))
                    if pattern is not None
                    else [GroupAggOperation(dataset.categorical_columns()[0], "count",
                                            dataset.categorical_columns()[0])]
                )
                if not candidates:
                    feasible = False
                    break
                chosen = candidates[seed_offset % len(candidates)]
                try:
                    view = self._executor.execute(session.current.view, chosen)
                except ExecutionError:
                    chosen = candidates[0]
                    try:
                        view = self._executor.execute(session.current.view, chosen)
                    except ExecutionError:
                        feasible = False
                        break
                session.add_operation(chosen, view)
                operations.append(chosen)
                if pattern is not None:
                    bindings.update(
                        pattern.substitute(bindings).capture(
                            [str(p) for p in chosen.signature()], bindings
                        )
                    )
                previous_depth = depth
            if not feasible:
                continue
            score = self._scorer.session_score(session)
            compliant = verify(session.to_tree(), query)
            score += 1.0 if compliant else 0.0
            if score > best_score:
                best_score = score
                best_session = session
        if best_session is None:
            best_session = session_from_operations(dataset, [])
        return best_session
