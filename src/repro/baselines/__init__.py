"""Baselines compared against LINX: ATENA, ChatGPT-direct, Sheets Explorer, human expert."""

from .atena import AtenaAgent, AtenaConfig, AtenaResult
from .chatgpt_direct import ChatGptDirectBaseline
from .human_expert import HumanExpertBaseline
from .sheets_explorer import (
    SheetsExplorerBaseline,
    SheetsSpecification,
    specification_from_ldx,
)

__all__ = [
    "AtenaAgent",
    "AtenaConfig",
    "AtenaResult",
    "ChatGptDirectBaseline",
    "HumanExpertBaseline",
    "SheetsExplorerBaseline",
    "SheetsSpecification",
    "specification_from_ldx",
]
