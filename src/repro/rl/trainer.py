"""On-policy policy-gradient trainer for the exploration agents.

Implements REINFORCE with a learned value baseline (a lightweight
actor-critic), entropy regularisation and reward normalisation.  This is the
training loop both the goal-agnostic ATENA baseline and the LINX CDRL agent
use; LINX differs only in its environment reward and its specification-aware
policy (snippet head + logit biasing).

Rollout collection has two modes.  The default steps one environment per
episode (the historical path).  When the trainer is given a
:class:`~repro.explore.rollouts.VectorEnvironment` (and ``num_envs > 1`` in
the config), episodes are collected in lock-step *waves* of K environments
sharing one execution cache — one batched policy forward per step instead of
K — via :func:`repro.explore.rollouts.collect_rollouts`.  Wave episodes
sample from per-episode RNG streams derived from ``(seed, episode_index)``,
so a training run is reproducible for a given ``(seed, num_envs)``
configuration.  Different ``num_envs`` values are *not* interchangeable:
every episode of a wave is collected with the wave's starting weights, so
changing K changes how sampling interleaves with gradient updates (the
rollout-level bit-identity guarantee belongs to ``collect_rollouts`` vs
``collect_sequential_rollouts``, not to the trainer's two modes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.explore.action_space import ActionChoice, choice_from_index_map
from repro.explore.environment import ExplorationEnvironment
from repro.explore.session import ExplorationSession

if TYPE_CHECKING:  # imported lazily at runtime (rollouts itself builds on rl)
    from repro.explore.rollouts import VectorEnvironment

from .buffer import EpisodeBuffer
from .optimizer import Adam
from .policy import CategoricalPolicy, PolicyDecision


@dataclass(frozen=True)
class TrainerConfig:
    """Hyper-parameters for policy-gradient training."""

    episodes: int = 300
    discount: float = 0.97
    learning_rate: float = 0.002
    entropy_coefficient: float = 0.03
    value_coefficient: float = 0.5
    batch_episodes: int = 8
    reward_scale: float = 1.0
    greedy_eval_every: int = 25
    seed: int = 0
    # Self-imitation: the best episodes seen so far are replayed alongside each
    # batch, which keeps rare high-reward (e.g. fully compliant) behaviour from
    # being washed out by the on-policy gradient noise.
    elite_episodes: int = 2
    #: Environments rolled out in lock-step per collection wave.  Values > 1
    #: require the trainer to be constructed with a ``vector_environment``.
    num_envs: int = 1

    def validate(self, prefix: str = "") -> list:
        """Structured validation; returns ``FieldError`` entries (empty = valid).

        *prefix* lets composing configs (``CdrlConfig``) report nested fields
        as e.g. ``trainer.episodes``.
        """
        # Lazy import: repro.engine.__init__ transitively imports this module,
        # so a module-level import would create a cycle.
        from repro.engine.errors import FieldError

        errors: list[FieldError] = []

        def bad(field_name: str, message: str) -> None:
            errors.append(FieldError(field=f"{prefix}{field_name}", message=message))

        if self.episodes < 1:
            bad("episodes", f"must be >= 1, got {self.episodes}")
        if self.batch_episodes < 1:
            bad("batch_episodes", f"must be >= 1, got {self.batch_episodes}")
        if self.num_envs < 1:
            bad("num_envs", f"must be >= 1, got {self.num_envs}")
        if not self.learning_rate > 0:
            bad("learning_rate", f"must be > 0, got {self.learning_rate}")
        if not 0 < self.discount <= 1:
            bad("discount", f"must be in (0, 1], got {self.discount}")
        if self.entropy_coefficient < 0:
            bad(
                "entropy_coefficient",
                f"must be >= 0, got {self.entropy_coefficient}",
            )
        if self.value_coefficient < 0:
            bad("value_coefficient", f"must be >= 0, got {self.value_coefficient}")
        if not self.reward_scale > 0:
            bad("reward_scale", f"must be > 0, got {self.reward_scale}")
        if self.greedy_eval_every < 0:
            bad("greedy_eval_every", f"must be >= 0, got {self.greedy_eval_every}")
        if self.elite_episodes < 0:
            bad("elite_episodes", f"must be >= 0, got {self.elite_episodes}")
        return errors

    def check(self) -> None:
        """Raise ``RequestValidationError`` if any hyper-parameter is invalid."""
        errors = self.validate()
        if errors:
            from repro.engine.errors import RequestValidationError

            raise RequestValidationError(errors)


@dataclass
class TrainingHistory:
    """Per-episode statistics collected during training (used by Figure 8)."""

    episode_returns: list[float] = field(default_factory=list)
    episode_steps: list[int] = field(default_factory=list)
    greedy_returns: list[tuple[int, float]] = field(default_factory=list)
    #: Execution-cache hit/miss counters snapshotted at the end of training
    #: (``None`` when the environment runs without a cache).
    cache_stats: Optional[dict] = None

    def total_steps(self) -> int:
        return int(sum(self.episode_steps))

    def moving_average(self, window: int = 20) -> list[float]:
        values = self.episode_returns
        if not values:
            return []
        averaged: list[float] = []
        for index in range(len(values)):
            start = max(0, index - window + 1)
            chunk = values[start : index + 1]
            averaged.append(sum(chunk) / len(chunk))
        return averaged

    def normalised_curve(self, window: int = 20) -> list[float]:
        """Returns normalised to [roughly] 0..1 by the best smoothed value (Figure 8)."""
        smoothed = self.moving_average(window)
        if not smoothed:
            return []
        top = max(smoothed)
        bottom = min(smoothed)
        if top == bottom:
            return [1.0 for _ in smoothed]
        return [(value - bottom) / (top - bottom) for value in smoothed]

    # -- JSON round-trip ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-serialisable snapshot; :meth:`from_dict` inverts it losslessly."""
        return {
            "episode_returns": [float(value) for value in self.episode_returns],
            "episode_steps": [int(value) for value in self.episode_steps],
            "greedy_returns": [
                [int(episode), float(value)] for episode, value in self.greedy_returns
            ],
            "cache_stats": dict(self.cache_stats) if self.cache_stats is not None else None,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TrainingHistory":
        """Rebuild a history from :meth:`to_dict` output (e.g. after JSON transport)."""
        return cls(
            episode_returns=[float(value) for value in payload.get("episode_returns", [])],
            episode_steps=[int(value) for value in payload.get("episode_steps", [])],
            greedy_returns=[
                (int(episode), float(value))
                for episode, value in payload.get("greedy_returns", [])
            ],
            cache_stats=(
                dict(payload["cache_stats"])
                if payload.get("cache_stats") is not None
                else None
            ),
        )


DecisionToChoice = Callable[[dict[str, int]], ActionChoice]


def default_decision_to_choice(indices: dict[str, int]) -> ActionChoice:
    """Map per-head indices to an :class:`ActionChoice` (the canonical decoder)."""
    return choice_from_index_map(indices)


class PolicyGradientTrainer:
    """Trains a :class:`CategoricalPolicy` in an :class:`ExplorationEnvironment`."""

    def __init__(
        self,
        environment: ExplorationEnvironment,
        policy: CategoricalPolicy,
        config: TrainerConfig | None = None,
        decision_to_choice: DecisionToChoice | None = None,
        vector_environment: "VectorEnvironment | None" = None,
    ):
        self.environment = environment
        self.policy = policy
        self.config = config or TrainerConfig()
        self.decision_to_choice = decision_to_choice or default_decision_to_choice
        self.vector_environment = vector_environment
        if self.config.num_envs > 1:
            if vector_environment is None:
                raise ValueError(
                    "num_envs > 1 requires a vector_environment "
                    "(see repro.explore.rollouts.VectorEnvironment)"
                )
            if vector_environment.num_envs < self.config.num_envs:
                raise ValueError(
                    f"num_envs={self.config.num_envs} exceeds the vector "
                    f"environment's {vector_environment.num_envs} environments"
                )
        self.config.check()
        self.optimizer = Adam(learning_rate=self.config.learning_rate)
        self.history = TrainingHistory()
        self._elite: list[EpisodeBuffer] = []
        #: Episodes collected since the last gradient update.  Held on the
        #: trainer (not local to :meth:`train`) so external drivers — the
        #: actor/learner fleet — can feed episodes through
        #: :meth:`record_episode` and checkpoints can persist a mid-batch
        #: position exactly.
        self._batch: list[EpisodeBuffer] = []

    # -- rollout -------------------------------------------------------------------------
    def run_episode(self, greedy: bool = False) -> tuple[EpisodeBuffer, ExplorationSession]:
        """Run one episode with the current policy and return its buffer and session."""
        buffer = EpisodeBuffer()
        observation = self.environment.reset()
        done = False
        while not done:
            decision = self.policy.act(observation, greedy=greedy)
            choice = self.decision_to_choice(decision.indices)
            result = self.environment.step(choice)
            buffer.add(decision, result.reward * self.config.reward_scale, result.done)
            observation = result.observation
            done = result.done
        return buffer, self.environment.session

    # -- training ------------------------------------------------------------------------
    def train(
        self,
        episodes: Optional[int] = None,
        callback: Optional[Callable[[int, float, ExplorationSession], None]] = None,
    ) -> TrainingHistory:
        """Train for *episodes* (default from the config) and return the history.

        With ``config.num_envs > 1`` (and a vector environment) episodes are
        collected in lock-step waves of up to ``num_envs`` environments over
        one shared execution cache; per-episode bookkeeping — history,
        gradient batches, elite tracking, callbacks, periodic greedy
        evaluations — is identical in both modes.
        """
        total_episodes = episodes if episodes is not None else self.config.episodes
        num_envs = self.config.num_envs
        if num_envs > 1 and self.vector_environment is not None:
            from repro.explore.rollouts import collect_rollouts

            episode = 0
            while episode < total_episodes:
                wave = min(num_envs, total_episodes - episode)
                rollout = collect_rollouts(
                    self.vector_environment,
                    self.policy,
                    seed=self.config.seed,
                    episode_base=episode,
                    num_episodes=wave,
                    decision_to_choice=self.decision_to_choice,
                    reward_scale=self.config.reward_scale,
                )
                for buffer, session in zip(rollout.buffers, rollout.sessions):
                    self.record_episode(episode, buffer, session, callback=callback)
                    episode += 1
        else:
            for episode in range(total_episodes):
                buffer, session = self.run_episode(greedy=False)
                self.record_episode(episode, buffer, session, callback=callback)
        return self.finish_training()

    def record_episode(
        self,
        episode: int,
        buffer: EpisodeBuffer,
        session: Optional[ExplorationSession],
        callback: Optional[Callable[[int, float, ExplorationSession], None]] = None,
    ) -> None:
        """Account one collected episode: history, batching, elites, greedy evals.

        This is the per-episode half of :meth:`train`, exposed so external
        collectors (the actor/learner fleet in :mod:`repro.train`) can drive
        the exact same bookkeeping with episodes they gathered elsewhere.
        Gradient updates fire whenever the pending batch reaches
        ``config.batch_episodes``.
        """
        self.history.episode_returns.append(buffer.total_reward())
        self.history.episode_steps.append(len(buffer))
        self._batch.append(buffer)
        self._maybe_keep_elite(buffer)
        if callback is not None:
            callback(episode, buffer.total_reward(), session)
        if len(self._batch) >= self.config.batch_episodes:
            self._update(self._batch)
            self._batch.clear()
        if (
            self.config.greedy_eval_every
            and (episode + 1) % self.config.greedy_eval_every == 0
        ):
            greedy_buffer, _ = self.run_episode(greedy=True)
            self.history.greedy_returns.append(
                (episode + 1, greedy_buffer.total_reward())
            )

    def finish_training(self) -> TrainingHistory:
        """Flush any partial batch, snapshot cache stats, and return the history."""
        if self._batch:
            self._update(self._batch)
            self._batch.clear()
        self.history.cache_stats = self.environment.cache_stats()
        return self.history

    def _maybe_keep_elite(self, buffer: EpisodeBuffer) -> None:
        """Track the best-returning episodes for self-imitation replay."""
        if self.config.elite_episodes <= 0:
            return
        self._elite.append(buffer)
        self._elite.sort(key=lambda b: b.total_reward(), reverse=True)
        del self._elite[self.config.elite_episodes :]

    def _update(self, batch: list[EpisodeBuffer]) -> None:
        """One policy-gradient update over a batch of episodes (plus elite replay)."""
        decisions: list[PolicyDecision] = []
        advantages: list[float] = []
        targets: list[float] = []
        replay = [b for b in self._elite if not any(b is member for member in batch)]
        for buffer in list(batch) + replay:
            returns = buffer.returns(self.config.discount)
            for transition, ret in zip(buffer.transitions, returns):
                decisions.append(transition.decision)
                advantages.append(ret - transition.decision.value)
                targets.append(ret)
        if not decisions:
            return
        advantage_array = np.asarray(advantages)
        std = float(advantage_array.std())
        if std > 1e-8:
            advantage_array = (advantage_array - advantage_array.mean()) / std
        self.policy.zero_grad()
        # One batched pass over the whole update (bit-identical to the
        # per-decision loop it replaced; see accumulate_gradient_batch).
        self.policy.accumulate_gradient_batch(
            decisions,
            advantage_array,
            np.asarray(targets, dtype=np.float64),
            entropy_coefficient=self.config.entropy_coefficient,
            value_coefficient=self.config.value_coefficient,
        )
        self.optimizer.step(self.policy.parameters())

    # -- evaluation ----------------------------------------------------------------------
    def best_session(self, attempts: int = 5) -> tuple[ExplorationSession, float]:
        """Return the best greedy/sampled session after training."""
        best: tuple[ExplorationSession, float] | None = None
        for attempt in range(max(1, attempts)):
            buffer, session = self.run_episode(greedy=(attempt == 0))
            score = buffer.total_reward()
            if best is None or score > best[1]:
                best = (session, score)
        assert best is not None
        return best
