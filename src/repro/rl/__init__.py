"""Minimal deep reinforcement learning library (the ChainerRL substitute)."""

from .buffer import EpisodeBuffer, Transition
from .network import DenseLayer, MultiHeadPolicyNetwork, softmax
from .optimizer import SGD, Adam
from .policy import CategoricalPolicy, PolicyDecision
from .schedules import ConstantSchedule, ExponentialDecaySchedule, LinearSchedule
from .trainer import (
    PolicyGradientTrainer,
    TrainerConfig,
    TrainingHistory,
    default_decision_to_choice,
)

__all__ = [
    "Adam",
    "CategoricalPolicy",
    "ConstantSchedule",
    "DenseLayer",
    "EpisodeBuffer",
    "ExponentialDecaySchedule",
    "LinearSchedule",
    "MultiHeadPolicyNetwork",
    "PolicyDecision",
    "PolicyGradientTrainer",
    "SGD",
    "TrainerConfig",
    "TrainingHistory",
    "Transition",
    "default_decision_to_choice",
    "softmax",
]
