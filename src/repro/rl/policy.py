"""Categorical multi-head policy on top of :class:`MultiHeadPolicyNetwork`.

The policy samples one index per softmax head (operation type, filter
attribute, operator, term, group attribute, aggregation function and
aggregation attribute), records the probabilities needed for the REINFORCE
update, and converts policy-gradient losses into logit gradients for the
network's backward pass.

The policy also supports an optional *bias provider*: a callable that, given
the head name, returns an additive logit bias.  The specification-aware
network (Section 5.3) uses this hook to shift probability mass toward
snippet-compatible parameter values.

A second hook, the *mask provider*, returns per-head boolean validity masks
(e.g. :meth:`ExplorationEnvironment.head_mask`, backed by the schema-only
:meth:`ActionSpace.valid_mask`).  Masked-out choices receive a large negative
logit bias, driving their probability to exactly zero; the mask in effect at
sampling time is recorded on the decision so the gradient update re-applies
the same distribution.

Acting comes in two shapes: :meth:`CategoricalPolicy.act` for one
observation, and :meth:`CategoricalPolicy.act_batch` for a ``(K, F)`` stack
of observations from K environments stepped in lock-step (see
:mod:`repro.explore.rollouts`).  Both run the exact same per-row arithmetic
— one shared sampling kernel, one shared bias fold — so a batched decision
for environment ``k`` is bit-identical to the sequential decision taken with
the same RNG stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence

import numpy as np

from .network import MultiHeadPolicyNetwork

BiasProvider = Callable[[str], Optional[np.ndarray]]
MaskProvider = Callable[[str], Optional[np.ndarray]]

#: Additive logit applied to masked-out choices; large enough that the
#: post-softmax probability underflows to exactly 0.0.
MASK_LOGIT_BIAS = -1e9


@dataclass
class PolicyDecision:
    """One sampled action with everything needed for the gradient update."""

    indices: dict[str, int]
    probabilities: dict[str, np.ndarray]
    log_prob: float
    value: float
    entropy: float
    observation: np.ndarray = field(repr=False, default=None)
    #: Logit biases that were in effect when the action was sampled; reused at
    #: update time so the gradient matches the sampling distribution.
    biases: dict[str, np.ndarray] = field(repr=False, default_factory=dict)


class CategoricalPolicy:
    """Samples factored actions and computes REINFORCE gradients."""

    def __init__(
        self,
        network: MultiHeadPolicyNetwork,
        rng: np.random.Generator | None = None,
        bias_provider: BiasProvider | None = None,
        mask_provider: MaskProvider | None = None,
    ):
        self.network = network
        self.rng = rng or np.random.default_rng(0)
        self.bias_provider = bias_provider
        self.mask_provider = mask_provider
        #: Optional acting delegate ``(obs, biases_list, rngs, greedy) ->
        #: list[PolicyDecision]``.  When set, :meth:`act_batch` routes the
        #: fully-prepared batch there instead of running the network forward
        #: itself — the continuous batcher installs a hook here to coalesce
        #: this policy's rows with other requests' into one shared wave.
        #: The delegate must be bit-identical to the local path (the batcher
        #: is; see :mod:`repro.engine.batcher`).  Learning never routes
        #: through it: gradient forwards stay on the owning thread.
        self.act_backend = None

    # -- acting --------------------------------------------------------------------------
    def _collect_biases(self) -> dict[str, np.ndarray]:
        """Ask the bias provider for the current per-head logit biases."""
        if self.bias_provider is None:
            return {}
        biases: dict[str, np.ndarray] = {}
        for name in self.network.head_sizes:
            bias = self.bias_provider(name)
            if bias is not None:
                biases[name] = np.asarray(bias, dtype=np.float64)
        return biases

    def _apply_masks(self, biases: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Fold the mask provider's validity masks into the logit biases.

        Masks shorter than a head (e.g. the base action-type mask against the
        specification-aware head with its extra snippet entry) are padded
        with ``True``; all-true and degenerate all-false masks are ignored.
        """
        if self.mask_provider is None:
            return biases
        for name, size in self.network.head_sizes.items():
            mask = self.mask_provider(name)
            if mask is None:
                continue
            mask = np.asarray(mask, dtype=bool)
            if len(mask) < size:
                mask = np.concatenate([mask, np.ones(size - len(mask), dtype=bool)])
            elif len(mask) > size:
                mask = mask[:size]
            if mask.all() or not mask.any():
                continue
            bias = biases.get(name)
            bias = np.zeros(size) if bias is None else np.array(bias, dtype=np.float64)
            bias[~mask] += MASK_LOGIT_BIAS
            biases[name] = bias
        return biases

    def decision_biases(self) -> dict[str, np.ndarray]:
        """The per-head logit biases in effect right now (provider + masks).

        This is the per-step, per-environment part of acting; the batched
        rollout collector calls it once per environment (with the policy's
        hooks bound to that environment) and hands the results to
        :meth:`act_batch`.
        """
        return self._apply_masks(self._collect_biases())

    @staticmethod
    def _adjust_probabilities(
        probabilities: dict[str, np.ndarray],
        biases: Optional[dict[str, np.ndarray]],
    ) -> dict[str, np.ndarray]:
        """Re-softmax each biased head's probabilities with the bias added."""
        if not biases:
            return probabilities
        adjusted: dict[str, np.ndarray] = {}
        for name, probs in probabilities.items():
            bias = biases.get(name)
            if bias is None:
                adjusted[name] = probs
                continue
            logits = np.log(np.clip(probs, 1e-12, None)) + bias
            shifted = logits - logits.max()
            exp = np.exp(shifted)
            adjusted[name] = exp / exp.sum()
        return adjusted

    def _head_probabilities(
        self,
        observation: np.ndarray,
        biases: Optional[dict[str, np.ndarray]] = None,
    ) -> tuple[dict[str, np.ndarray], float]:
        probabilities, value = self.network.forward(observation)
        return self._adjust_probabilities(probabilities, biases), value

    def act(
        self,
        observation: np.ndarray,
        greedy: bool = False,
        rng: np.random.Generator | None = None,
    ) -> PolicyDecision:
        """Sample (or argmax, when *greedy*) one index per head.

        ``rng`` overrides the policy's own generator for this decision —
        sequential replays of batched rollouts use it to consume the same
        per-environment stream the batch did.  Acting is the batch kernel
        with K = 1, so a batched decision for the same observation, biases
        and RNG state is bit-identical by construction.
        """
        biases = self.decision_biases()
        return self.act_batch(
            np.asarray(observation, dtype=np.float64)[None, :],
            [biases],
            None if rng is None else [rng],
            greedy=greedy,
        )[0]

    def act_batch(
        self,
        observations: np.ndarray,
        biases_list: Sequence[dict[str, np.ndarray]],
        rngs: Sequence[np.random.Generator] | None = None,
        greedy: bool = False,
    ) -> list[PolicyDecision]:
        """Decide for a ``(K, F)`` batch of observations in one network pass.

        ``biases_list[k]`` holds environment *k*'s per-head logit biases
        (:meth:`decision_biases` computed with the policy bound to that
        environment) and ``rngs[k]`` its sampling stream.  Everything that
        does not consume randomness is vectorised across the batch — the
        trunk/head forward, the bias folds, the per-head log/entropy/CDF
        statistics — while sampling draws one uniform per head from each
        row's own RNG.  All batched kernels reduce along the contiguous
        last axis, so row *k* of every intermediate is bit-identical to the
        same computation on ``observations[k]`` alone, whatever K is.
        """
        obs = np.asarray(observations, dtype=np.float64)
        if obs.ndim != 2:
            raise ValueError(f"expected a (K, F) observation batch, got {obs.shape}")
        if self.act_backend is not None:
            if len(biases_list) != len(obs):
                raise ValueError("need one bias mapping per observation")
            if rngs is not None and len(rngs) != len(obs):
                raise ValueError("need one RNG per observation")
            # Pin each row to an explicit RNG before handing off: the wave
            # thread may interleave rows of several policies, and every row
            # must keep sampling from its own stream (``self.rng`` rows draw
            # in row order, exactly as the local loop below would).
            pinned = list(rngs) if rngs is not None else [self.rng] * len(obs)
            return self.act_backend(obs, list(biases_list), pinned, greedy)
        batch_probs, values = self.network.forward_batch(obs)
        return self.decisions_from_forward(
            obs, batch_probs, values, biases_list, rngs, greedy=greedy
        )

    @staticmethod
    def _fold_biases(
        batch_probs: Mapping[str, np.ndarray],
        biases_list: Sequence[dict[str, np.ndarray]],
    ) -> dict[str, np.ndarray]:
        """Re-softmax the rows of each head that carry a logit bias.

        The batched counterpart of :meth:`_adjust_probabilities`: row ``k``
        of every output matrix is bit-identical to the single-row fold on
        ``biases_list[k]`` alone.  Unbiased rows keep the raw head output
        untouched (a zero-bias fold is not a bitwise no-op).
        """
        count = len(biases_list)
        adjusted: dict[str, np.ndarray] = {}
        for name, matrix in batch_probs.items():
            rows = [
                k for k in range(count) if biases_list[k].get(name) is not None
            ]
            if rows:
                index = np.asarray(rows)
                bias = np.stack([biases_list[k][name] for k in rows])
                logits = np.log(np.clip(matrix[index], 1e-12, None)) + bias
                shifted = logits - logits.max(axis=-1, keepdims=True)
                exp = np.exp(shifted)
                matrix = np.array(matrix)
                matrix[index] = exp / exp.sum(axis=-1, keepdims=True)
            adjusted[name] = matrix
        return adjusted

    def decisions_from_forward(
        self,
        obs: np.ndarray,
        batch_probs: dict[str, np.ndarray],
        values: np.ndarray,
        biases_list: Sequence[dict[str, np.ndarray]],
        rngs: Sequence[np.random.Generator] | None = None,
        greedy: bool = False,
    ) -> list[PolicyDecision]:
        """The post-forward half of :meth:`act_batch`.

        Takes the raw head probabilities and values of a ``(K, F)`` forward
        pass and performs everything downstream of the network — the bias
        folds, entropy/CDF statistics and per-row sampling.  The continuous
        batcher (:mod:`repro.engine.batcher`) calls this directly with the
        outputs of a *stacked multi-network* forward so that rows belonging
        to different requests still share one vectorised decision kernel.
        """
        count = len(obs)
        if len(biases_list) != count:
            raise ValueError("need one bias mapping per observation")
        if rngs is not None and len(rngs) != count:
            raise ValueError("need one RNG per observation")
        names = list(batch_probs)
        adjusted = self._fold_biases(batch_probs, biases_list)

        # Per-head decision statistics, batched: entropies accumulate in head
        # order (matching the scalar accumulation of a single decision) and
        # sampling CDFs come from one row-wise cumsum per head.
        entropies = np.zeros(count)
        cdfs: dict[str, np.ndarray] = {}
        for name in names:
            matrix = adjusted[name]
            logs = np.log(np.clip(matrix, 1e-12, None))
            entropies += -(matrix * logs).sum(axis=-1)
            if not greedy:
                cdfs[name] = np.cumsum(matrix, axis=-1)

        # Index selection, vectorised across rows.  Sampling draws the same
        # uniforms as the scalar loop it replaced: row k consumes one draw
        # per head, in head order, from its own stream (``Generator.random``
        # with a size fills the array from consecutive stream values), and
        # the inverse-CDF lookup counts ``cdf <= target`` entries — exactly
        # ``searchsorted(..., side="right")`` on that row's cumsum.
        chosen: dict[str, np.ndarray] = {}
        if greedy:
            for name in names:
                chosen[name] = np.argmax(adjusted[name], axis=-1)
        else:
            draws = np.empty((count, len(names)))
            for k in range(count):
                rng = self.rng if rngs is None else rngs[k]
                draws[k] = rng.random(len(names))
            for position, name in enumerate(names):
                cdf = cdfs[name]
                targets = draws[:, position] * cdf[:, -1]
                indices = (cdf <= targets[:, None]).sum(axis=-1)
                chosen[name] = np.minimum(indices, cdf.shape[-1] - 1)

        # Joint log-probabilities accumulate per head in head order, exactly
        # like the scalar accumulation of a single decision.
        row_range = np.arange(count)
        log_probs = np.zeros(count)
        for name in names:
            picked = adjusted[name][row_range, chosen[name]]
            log_probs += np.log(np.maximum(picked, 1e-12))

        decisions: list[PolicyDecision] = []
        for k in range(count):
            decisions.append(
                PolicyDecision(
                    indices={name: int(chosen[name][k]) for name in names},
                    probabilities={name: adjusted[name][k] for name in names},
                    log_prob=float(log_probs[k]),
                    value=float(values[k]),
                    entropy=float(entropies[k]),
                    observation=np.array(obs[k], copy=True),
                    biases=biases_list[k],
                )
            )
        return decisions

    # -- learning ------------------------------------------------------------------------
    def accumulate_gradient_batch(
        self,
        decisions: Sequence[PolicyDecision],
        advantages: Sequence[float] | np.ndarray,
        value_targets: Sequence[float] | np.ndarray,
        entropy_coefficient: float = 0.01,
        value_coefficient: float = 0.5,
    ) -> None:
        """Accumulate gradients for a batch of decisions in one network pass.

        The loss per decision is the standard actor-critic objective::

            L = -advantage * log pi(a|s) + value_coef * (V(s) - target)^2
                - entropy_coef * H(pi)

        One batched re-forward replaces ``len(decisions)`` single-row
        forwards (which dominated update cost), re-applying each row's
        recorded logit biases so the gradient matches the sampling
        distribution.  Bit-identity contract: because every forward and
        backward kernel is batch-shape independent and parameter-gradient
        accumulation reduces over the batch in row order, this call
        produces exactly the gradients of ``len(decisions)`` sequential
        :meth:`accumulate_gradient` calls.  Gradients are pushed into the
        network; the caller applies the optimiser step afterwards.
        """
        if not decisions:
            return
        observations = np.stack(
            [np.asarray(decision.observation, dtype=np.float64) for decision in decisions]
        )
        batch_probs, values = self.network.forward_batch(observations)
        adjusted = self._fold_biases(
            batch_probs, [decision.biases for decision in decisions]
        )
        advantage_column = np.asarray(advantages, dtype=np.float64)[:, None]
        head_grads: dict[str, np.ndarray] = {}
        for name, probs in adjusted.items():
            one_hot = np.zeros_like(probs)
            one_hot[
                np.arange(len(decisions)),
                [decision.indices[name] for decision in decisions],
            ] = 1.0
            # d(-advantage * log p_chosen)/d logits = advantage * (p - onehot)
            grad = advantage_column * (probs - one_hot)
            # Entropy bonus gradient: d(-H)/d logits = p * (log p + H)
            log_p = np.log(np.clip(probs, 1e-12, None))
            head_entropies = -(probs * log_p).sum(axis=-1, keepdims=True)
            grad += entropy_coefficient * probs * (log_p + head_entropies)
            head_grads[name] = grad
        value_grads = value_coefficient * 2.0 * (
            values - np.asarray(value_targets, dtype=np.float64)
        )
        self.network.backward(head_grads, value_grads)

    def accumulate_gradient(
        self,
        decision: PolicyDecision,
        advantage: float,
        value_target: float,
        entropy_coefficient: float = 0.01,
        value_coefficient: float = 0.5,
    ) -> None:
        """Accumulate gradients for one decision (the K=1 batch kernel)."""
        self.accumulate_gradient_batch(
            [decision],
            [advantage],
            [value_target],
            entropy_coefficient=entropy_coefficient,
            value_coefficient=value_coefficient,
        )

    def zero_grad(self) -> None:
        self.network.zero_grad()

    def parameters(self):
        return self.network.parameters()

    # -- diagnostics ----------------------------------------------------------------------
    def action_distribution(self, observation: np.ndarray) -> Mapping[str, np.ndarray]:
        """Per-head probabilities without sampling (used in tests and the ablation)."""
        probabilities, _ = self._head_probabilities(observation, self.decision_biases())
        return probabilities
