"""Categorical multi-head policy on top of :class:`MultiHeadPolicyNetwork`.

The policy samples one index per softmax head (operation type, filter
attribute, operator, term, group attribute, aggregation function and
aggregation attribute), records the probabilities needed for the REINFORCE
update, and converts policy-gradient losses into logit gradients for the
network's backward pass.

The policy also supports an optional *bias provider*: a callable that, given
the head name, returns an additive logit bias.  The specification-aware
network (Section 5.3) uses this hook to shift probability mass toward
snippet-compatible parameter values.

A second hook, the *mask provider*, returns per-head boolean validity masks
(e.g. :meth:`ExplorationEnvironment.head_mask`, backed by the schema-only
:meth:`ActionSpace.valid_mask`).  Masked-out choices receive a large negative
logit bias, driving their probability to exactly zero; the mask in effect at
sampling time is recorded on the decision so the gradient update re-applies
the same distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

import numpy as np

from .network import MultiHeadPolicyNetwork

BiasProvider = Callable[[str], Optional[np.ndarray]]
MaskProvider = Callable[[str], Optional[np.ndarray]]

#: Additive logit applied to masked-out choices; large enough that the
#: post-softmax probability underflows to exactly 0.0.
MASK_LOGIT_BIAS = -1e9


@dataclass
class PolicyDecision:
    """One sampled action with everything needed for the gradient update."""

    indices: dict[str, int]
    probabilities: dict[str, np.ndarray]
    log_prob: float
    value: float
    entropy: float
    observation: np.ndarray = field(repr=False, default=None)
    #: Logit biases that were in effect when the action was sampled; reused at
    #: update time so the gradient matches the sampling distribution.
    biases: dict[str, np.ndarray] = field(repr=False, default_factory=dict)


class CategoricalPolicy:
    """Samples factored actions and computes REINFORCE gradients."""

    def __init__(
        self,
        network: MultiHeadPolicyNetwork,
        rng: np.random.Generator | None = None,
        bias_provider: BiasProvider | None = None,
        mask_provider: MaskProvider | None = None,
    ):
        self.network = network
        self.rng = rng or np.random.default_rng(0)
        self.bias_provider = bias_provider
        self.mask_provider = mask_provider

    # -- acting --------------------------------------------------------------------------
    def _collect_biases(self) -> dict[str, np.ndarray]:
        """Ask the bias provider for the current per-head logit biases."""
        if self.bias_provider is None:
            return {}
        biases: dict[str, np.ndarray] = {}
        for name in self.network.head_sizes:
            bias = self.bias_provider(name)
            if bias is not None:
                biases[name] = np.asarray(bias, dtype=np.float64)
        return biases

    def _apply_masks(self, biases: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Fold the mask provider's validity masks into the logit biases.

        Masks shorter than a head (e.g. the base action-type mask against the
        specification-aware head with its extra snippet entry) are padded
        with ``True``; all-true and degenerate all-false masks are ignored.
        """
        if self.mask_provider is None:
            return biases
        for name, size in self.network.head_sizes.items():
            mask = self.mask_provider(name)
            if mask is None:
                continue
            mask = np.asarray(mask, dtype=bool)
            if len(mask) < size:
                mask = np.concatenate([mask, np.ones(size - len(mask), dtype=bool)])
            elif len(mask) > size:
                mask = mask[:size]
            if mask.all() or not mask.any():
                continue
            bias = biases.get(name)
            bias = np.zeros(size) if bias is None else np.array(bias, dtype=np.float64)
            bias[~mask] += MASK_LOGIT_BIAS
            biases[name] = bias
        return biases

    def _head_probabilities(
        self,
        observation: np.ndarray,
        biases: Optional[dict[str, np.ndarray]] = None,
    ) -> tuple[dict[str, np.ndarray], float]:
        probabilities, value = self.network.forward(observation)
        if biases:
            adjusted: dict[str, np.ndarray] = {}
            for name, probs in probabilities.items():
                bias = biases.get(name)
                if bias is None:
                    adjusted[name] = probs
                    continue
                logits = np.log(np.clip(probs, 1e-12, None)) + bias
                shifted = logits - logits.max()
                exp = np.exp(shifted)
                adjusted[name] = exp / exp.sum()
            probabilities = adjusted
        return probabilities, value

    def act(self, observation: np.ndarray, greedy: bool = False) -> PolicyDecision:
        """Sample (or argmax, when *greedy*) one index per head."""
        biases = self._apply_masks(self._collect_biases())
        probabilities, value = self._head_probabilities(observation, biases)
        indices: dict[str, int] = {}
        log_prob = 0.0
        entropy = 0.0
        for name, probs in probabilities.items():
            if greedy:
                index = int(np.argmax(probs))
            else:
                index = int(self.rng.choice(len(probs), p=probs))
            indices[name] = index
            log_prob += float(np.log(max(probs[index], 1e-12)))
            entropy += float(-np.sum(probs * np.log(np.clip(probs, 1e-12, None))))
        return PolicyDecision(
            indices=indices,
            probabilities=probabilities,
            log_prob=log_prob,
            value=value,
            entropy=entropy,
            observation=np.array(observation, copy=True),
            biases=biases,
        )

    # -- learning ------------------------------------------------------------------------
    def accumulate_gradient(
        self,
        decision: PolicyDecision,
        advantage: float,
        value_target: float,
        entropy_coefficient: float = 0.01,
        value_coefficient: float = 0.5,
    ) -> None:
        """Accumulate gradients for one decision.

        The loss is the standard actor-critic objective::

            L = -advantage * log pi(a|s) + value_coef * (V(s) - target)^2
                - entropy_coef * H(pi)

        Gradients are pushed into the network; the caller applies the
        optimiser step after a batch of decisions.
        """
        # Re-run the forward pass so the layer caches correspond to this observation,
        # re-applying the biases that were active when the action was sampled.
        probabilities, value = self._head_probabilities(decision.observation, decision.biases)
        head_grads: dict[str, np.ndarray] = {}
        for name, probs in probabilities.items():
            chosen = decision.indices[name]
            one_hot = np.zeros_like(probs)
            one_hot[chosen] = 1.0
            # d(-advantage * log p_chosen)/d logits = advantage * (p - onehot)
            grad = advantage * (probs - one_hot)
            # Entropy bonus gradient: d(-H)/d logits = p * (log p + H)
            log_p = np.log(np.clip(probs, 1e-12, None))
            head_entropy = float(-np.sum(probs * log_p))
            grad += entropy_coefficient * probs * (log_p + head_entropy)
            head_grads[name] = grad
        value_grad = value_coefficient * 2.0 * (value - value_target)
        self.network.backward(head_grads, value_grad)

    def zero_grad(self) -> None:
        self.network.zero_grad()

    def parameters(self):
        return self.network.parameters()

    # -- diagnostics ----------------------------------------------------------------------
    def action_distribution(self, observation: np.ndarray) -> Mapping[str, np.ndarray]:
        """Per-head probabilities without sampling (used in tests and the ablation)."""
        probabilities, _ = self._head_probabilities(
            observation, self._apply_masks(self._collect_biases())
        )
        return probabilities
