"""Gradient-descent optimisers for the numpy policy networks."""

from __future__ import annotations

import numpy as np


class SGD:
    """Plain stochastic gradient descent with optional gradient clipping."""

    def __init__(self, learning_rate: float = 0.01, clip_norm: float | None = 5.0):
        self.learning_rate = learning_rate
        self.clip_norm = clip_norm

    def step(self, parameters: list[tuple[np.ndarray, np.ndarray]]) -> None:
        scale = _clip_scale(parameters, self.clip_norm)
        for weight, grad in parameters:
            weight -= self.learning_rate * scale * grad


class Adam:
    """Adam optimiser (Kingma & Ba, 2015) over in-place numpy parameters."""

    def __init__(
        self,
        learning_rate: float = 0.003,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        clip_norm: float | None = 5.0,
    ):
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self.clip_norm = clip_norm
        self._step = 0
        self._moments: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def step(self, parameters: list[tuple[np.ndarray, np.ndarray]]) -> None:
        self._step += 1
        scale = _clip_scale(parameters, self.clip_norm)
        for weight, grad in parameters:
            key = id(weight)
            if key not in self._moments:
                self._moments[key] = (np.zeros_like(weight), np.zeros_like(weight))
            m, v = self._moments[key]
            g = grad * scale
            m[...] = self.beta1 * m + (1 - self.beta1) * g
            v[...] = self.beta2 * v + (1 - self.beta2) * (g * g)
            m_hat = m / (1 - self.beta1**self._step)
            v_hat = v / (1 - self.beta2**self._step)
            weight -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)


def _clip_scale(
    parameters: list[tuple[np.ndarray, np.ndarray]], clip_norm: float | None
) -> float:
    """Global-norm gradient clipping factor (1.0 when clipping is off or unnecessary)."""
    if clip_norm is None:
        return 1.0
    total = 0.0
    for _, grad in parameters:
        total += float(np.sum(grad * grad))
    norm = np.sqrt(total)
    if norm <= clip_norm or norm == 0.0:
        return 1.0
    return clip_norm / norm
