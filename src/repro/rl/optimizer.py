"""Gradient-descent optimisers for the numpy policy networks."""

from __future__ import annotations

import numpy as np


class SGD:
    """Plain stochastic gradient descent with optional gradient clipping."""

    def __init__(self, learning_rate: float = 0.01, clip_norm: float | None = 5.0):
        self.learning_rate = learning_rate
        self.clip_norm = clip_norm

    def step(self, parameters: list[tuple[np.ndarray, np.ndarray]]) -> None:
        scale = _clip_scale(parameters, self.clip_norm)
        for weight, grad in parameters:
            weight -= self.learning_rate * scale * grad


class Adam:
    """Adam optimiser (Kingma & Ba, 2015) over in-place numpy parameters."""

    def __init__(
        self,
        learning_rate: float = 0.003,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        clip_norm: float | None = 5.0,
    ):
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self.clip_norm = clip_norm
        self._step = 0
        self._moments: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def step(self, parameters: list[tuple[np.ndarray, np.ndarray]]) -> None:
        self._step += 1
        scale = _clip_scale(parameters, self.clip_norm)
        for weight, grad in parameters:
            key = id(weight)
            if key not in self._moments:
                self._moments[key] = (np.zeros_like(weight), np.zeros_like(weight))
            m, v = self._moments[key]
            g = grad * scale
            m[...] = self.beta1 * m + (1 - self.beta1) * g
            v[...] = self.beta2 * v + (1 - self.beta2) * (g * g)
            m_hat = m / (1 - self.beta1**self._step)
            v_hat = v / (1 - self.beta2**self._step)
            weight -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    # -- structural state export/import ------------------------------------------------
    def export_state(
        self, parameters: list[tuple[np.ndarray, np.ndarray]]
    ) -> dict[str, object]:
        """Serialize the optimiser state aligned to *parameters* order.

        The internal moment table is keyed by array identity, which does not
        survive a process boundary; exporting projects it onto the caller's
        parameter order (the network's :meth:`~repro.rl.network.MultiHeadPolicyNetwork.parameters`
        contract).  Parameters the optimiser has not seen yet export as
        ``None``.
        """
        moments: list[tuple[str, tuple[int, ...], bytes, bytes] | None] = []
        for weight, _ in parameters:
            entry = self._moments.get(id(weight))
            if entry is None:
                moments.append(None)
            else:
                m, v = entry
                moments.append((m.dtype.str, tuple(m.shape), m.tobytes(), v.tobytes()))
        return {"step": self._step, "moments": moments}

    def load_state(
        self,
        parameters: list[tuple[np.ndarray, np.ndarray]],
        state: dict[str, object],
    ) -> None:
        """Restore an :meth:`export_state` payload against *parameters*.

        Bit-identical resume: the restored moments and step counter make the
        next :meth:`step` compute exactly what an uninterrupted run would.
        """
        moments = state["moments"]
        if len(moments) != len(parameters):  # type: ignore[arg-type]
            raise ValueError(
                f"optimizer state covers {len(moments)} parameters, "  # type: ignore[arg-type]
                f"got {len(parameters)}"
            )
        rebuilt: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for (weight, _), entry in zip(parameters, moments):  # type: ignore[arg-type]
            if entry is None:
                continue
            dtype_str, shape, m_raw, v_raw = entry
            m = np.frombuffer(m_raw, dtype=np.dtype(dtype_str)).reshape(shape).copy()
            v = np.frombuffer(v_raw, dtype=np.dtype(dtype_str)).reshape(shape).copy()
            if m.shape != weight.shape:
                raise ValueError(
                    f"moment shape {m.shape} does not match parameter shape "
                    f"{weight.shape}"
                )
            rebuilt[id(weight)] = (m, v)
        self._step = int(state["step"])
        self._moments = rebuilt


def _clip_scale(
    parameters: list[tuple[np.ndarray, np.ndarray]], clip_norm: float | None
) -> float:
    """Global-norm gradient clipping factor (1.0 when clipping is off or unnecessary)."""
    if clip_norm is None:
        return 1.0
    total = 0.0
    for _, grad in parameters:
        total += float(np.sum(grad * grad))
    norm = np.sqrt(total)
    if norm <= clip_norm or norm == 0.0:
        return 1.0
    return clip_norm / norm
