"""A small numpy neural-network library for the DRL agents.

The paper builds on ChainerRL; offline we implement the minimal pieces the
exploration agents need: dense layers with tanh activations, a shared trunk
feeding several softmax heads (the "multi-softmax" pre-output layer of
Figure 2), a value head for the baseline, and manual backpropagation.

All parameters live in plain numpy arrays so the optimiser
(:mod:`repro.rl.optimizer`) can update them in place.

Forward passes accept either one observation vector or a ``(K, F)`` batch
(:meth:`MultiHeadPolicyNetwork.forward_batch`), which is how the vectorised
rollout collector (:mod:`repro.explore.rollouts`) evaluates K environments
in one pass.  The affine kernels deliberately route through ``np.einsum``
instead of BLAS matmul: OpenBLAS GEMM picks different micro-kernels for
different batch shapes, so row ``k`` of a ``(K, F) @ W`` product is *not*
bit-identical to the same row computed alone, while einsum's fixed reduction
order is.  That row-independence is what lets a K-env batched rollout
reproduce K sequential rollouts bit-for-bit (an explicit acceptance test).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np


def _init_weight(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Xavier/Glorot uniform initialisation."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def _affine(x: np.ndarray, weight: np.ndarray, bias: np.ndarray) -> np.ndarray:
    """``x @ weight + bias`` with a batch-shape-independent reduction order.

    ``x`` must be 2-D ``(K, fan_in)``; the result row for any observation is
    bit-identical whether it is computed in a batch of 1 or a batch of K.
    """
    return np.einsum("kf,fh->kh", x, weight) + bias


@dataclass
class DenseLayer:
    """A fully-connected layer ``y = x @ W + b`` with optional tanh activation.

    Forward/backward operate on 2-D ``(K, fan_in)`` batches; a batch of one
    is the single-observation case.
    """

    weight: np.ndarray
    bias: np.ndarray
    activation: str = "tanh"
    # forward cache
    _input: np.ndarray = field(default=None, repr=False)
    _pre_activation: np.ndarray = field(default=None, repr=False)
    # gradients
    grad_weight: np.ndarray = field(default=None, repr=False)
    grad_bias: np.ndarray = field(default=None, repr=False)

    @classmethod
    def create(
        cls, rng: np.random.Generator, fan_in: int, fan_out: int, activation: str = "tanh"
    ) -> "DenseLayer":
        return cls(
            weight=_init_weight(rng, fan_in, fan_out),
            bias=np.zeros(fan_out),
            activation=activation,
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim == 1:
            x = x[None, :]
        self._input = x
        self._pre_activation = _affine(x, self.weight, self.bias)
        if self.activation == "tanh":
            return np.tanh(self._pre_activation)
        if self.activation == "linear":
            return self._pre_activation
        raise ValueError(f"unknown activation {self.activation!r}")

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Accumulate parameter gradients and return the gradient wrt the input.

        Like the forward pass, every reduction is batch-shape independent:
        backpropagating a ``(K, fan_out)`` gradient batch in one call is
        bit-identical to K single-row calls in row order.  The weight
        gradient reduces over the batch via einsum (whose k-order
        accumulation matches a sequential row-by-row ``+=`` for
        ``fan_in >= 2``; one-column inputs fall back to an explicit loop,
        as does the bias, whose single-column einsum special case reorders
        the sum).
        """
        if grad_output.ndim == 1:
            grad_output = grad_output[None, :]
        if self.activation == "tanh":
            grad_pre = grad_output * (1.0 - np.tanh(self._pre_activation) ** 2)
        else:
            grad_pre = grad_output
        if self.grad_weight is None:
            self.grad_weight = np.zeros_like(self.weight)
            self.grad_bias = np.zeros_like(self.bias)
        if self.weight.shape[0] >= 2:
            self.grad_weight += np.einsum("kf,kh->fh", self._input, grad_pre)
        else:
            for k in range(len(grad_pre)):
                self.grad_weight += np.einsum(
                    "kf,kh->fh", self._input[k : k + 1], grad_pre[k : k + 1]
                )
        for row in grad_pre:
            self.grad_bias += row
        return np.einsum("kh,fh->kf", grad_pre, self.weight)

    def zero_grad(self) -> None:
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)

    def parameters(self) -> list[tuple[np.ndarray, np.ndarray]]:
        if self.grad_weight is None:
            self.zero_grad()
        return [(self.weight, self.grad_weight), (self.bias, self.grad_bias)]


def architecture_signature(network: "MultiHeadPolicyNetwork") -> tuple:
    """A hashable key of everything :func:`stacked_forward` needs to agree on.

    Networks with equal signatures have identically-shaped parameters (same
    observation size, trunk widths, and heads in the same order), so their
    weights can be stacked along a leading axis and evaluated in one
    gathered-weight pass.  Weight *values* are deliberately excluded — the
    whole point is batching across networks with different weights.
    """
    return (
        network.observation_size,
        network.hidden_sizes,
        tuple(network.head_sizes.items()),
    )


def stack_parameters(
    networks: "list[MultiHeadPolicyNetwork]",
) -> dict[str, object]:
    """Stack the weights of architecturally identical networks per layer.

    Returns the gathered-weight operands of :func:`stacked_forward`: one
    ``(N, fan_in, fan_out)`` weight stack and ``(N, fan_out)`` bias stack
    per trunk layer, per head, and for the value head.  Stacking copies
    every member's parameters, which at small wave sizes costs several
    times the forward einsum itself — callers firing many waves over the
    same member set should cache the result keyed by each network's
    ``weights_version`` (the continuous batcher does).
    """
    if not networks:
        raise ValueError("stacked_forward needs at least one network")
    signatures = {architecture_signature(network) for network in networks}
    if len(signatures) > 1:
        raise ValueError(
            "stacked_forward needs architecturally identical networks; "
            f"got {len(signatures)} distinct signatures"
        )
    reference = networks[0]
    return {
        "trunk": [
            (
                np.stack([network.trunk[i].weight for network in networks]),
                np.stack([network.trunk[i].bias for network in networks]),
            )
            for i in range(len(reference.trunk))
        ],
        "heads": {
            name: (
                np.stack([network.heads[name].weight for network in networks]),
                np.stack([network.heads[name].bias for network in networks]),
            )
            for name in reference.head_sizes
        },
        "value": (
            np.stack([network.value_head.weight for network in networks]),
            np.stack([network.value_head.bias for network in networks]),
        ),
    }


def stacked_forward(
    networks: "list[MultiHeadPolicyNetwork]",
    net_index: np.ndarray,
    observations: np.ndarray,
    stacks: dict[str, object] | None = None,
) -> tuple[dict[str, np.ndarray], np.ndarray]:
    """One forward pass over rows belonging to *different* networks.

    ``net_index[r]`` names the network (an index into *networks*) whose
    weights evaluate row ``r`` of *observations*.  Per layer the member
    weights are stacked ``(N, fan_in, fan_out)`` and gathered per row, and
    the affine kernel becomes ``einsum("rf,rfh->rh", x, W[net_index])`` —
    like :func:`_affine` a sum over the contiguous ``f`` axis in fixed
    order, so row ``r`` is bit-identical to ``networks[net_index[r]]``
    evaluating that observation alone (an explicit acceptance test).  This
    is what lets the continuous batcher fuse policy forwards of concurrent
    requests that each train their *own* network.

    ``stacks`` short-circuits the per-call :func:`stack_parameters` with a
    cached copy; it MUST have been built from *networks* in this order
    with the current weight values.

    Unlike :meth:`MultiHeadPolicyNetwork.forward_batch` this touches no
    layer caches: the owning request threads re-run their own forwards at
    gradient time, and the wave thread must never mutate their state.
    """
    if stacks is None:
        stacks = stack_parameters(networks)
    hidden = np.asarray(observations, dtype=np.float64)
    if hidden.ndim != 2:
        raise ValueError(f"expected a (R, F) batch, got shape {hidden.shape}")
    index = np.asarray(net_index, dtype=np.intp)
    if index.shape != (len(hidden),):
        raise ValueError("need one network index per observation row")

    def gathered_affine(stack: tuple[np.ndarray, np.ndarray], x: np.ndarray):
        weight, bias = stack
        return np.einsum("rf,rfh->rh", x, weight[index]) + bias[index]

    for trunk_stack in stacks["trunk"]:
        hidden = np.tanh(gathered_affine(trunk_stack, hidden))
    probabilities = {
        name: softmax(gathered_affine(head_stack, hidden))
        for name, head_stack in stacks["heads"].items()
    }
    values = gathered_affine(stacks["value"], hidden)[:, 0]
    return probabilities, values


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    shifted = logits - np.max(logits, axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


class MultiHeadPolicyNetwork:
    """Shared MLP trunk with one softmax head per action component and a value head.

    ``head_sizes`` maps head name -> number of discrete choices.  The forward
    pass returns per-head probability vectors plus a scalar state-value
    estimate used as the policy-gradient baseline.
    """

    def __init__(
        self,
        observation_size: int,
        head_sizes: Mapping[str, int],
        hidden_sizes: tuple[int, ...] = (64, 64),
        seed: int = 0,
    ):
        rng = np.random.default_rng(seed)
        self.observation_size = observation_size
        self.head_sizes = dict(head_sizes)
        self.hidden_sizes = tuple(hidden_sizes)
        self.trunk: list[DenseLayer] = []
        fan_in = observation_size
        for size in hidden_sizes:
            self.trunk.append(DenseLayer.create(rng, fan_in, size, activation="tanh"))
            fan_in = size
        self.heads: dict[str, DenseLayer] = {
            name: DenseLayer.create(rng, fan_in, size, activation="linear")
            for name, size in self.head_sizes.items()
        }
        self.value_head = DenseLayer.create(rng, fan_in, 1, activation="linear")
        #: Monotonic counter identifying the current weight values; bumped
        #: whenever the parameter buffers may have been mutated (optimiser
        #: steps reach them through :meth:`parameters`, checkpoint restore
        #: through :meth:`load_state`).  Caches of derived weight data —
        #: the continuous batcher's per-wave weight stacks — key on
        #: ``(id(network), weights_version)`` and so never serve stale
        #: parameters.
        self.weights_version = 0

    # -- forward --------------------------------------------------------------------------
    def forward_batch(
        self, observations: np.ndarray
    ) -> tuple[dict[str, np.ndarray], np.ndarray]:
        """Per-head probabilities ``(K, size)`` and state values ``(K,)`` for a batch.

        Row ``k`` of every output is bit-identical to
        :meth:`forward` applied to ``observations[k]`` alone (the affine
        kernels have batch-shape-independent reduction order), so batched
        rollouts reproduce sequential ones exactly.
        """
        hidden = np.asarray(observations, dtype=np.float64)
        if hidden.ndim != 2:
            raise ValueError(f"expected a (K, F) batch, got shape {hidden.shape}")
        for layer in self.trunk:
            hidden = layer.forward(hidden)
        probabilities = {
            name: softmax(head.forward(hidden)) for name, head in self.heads.items()
        }
        values = self.value_head.forward(hidden)[:, 0]
        return probabilities, values

    def forward(self, observation: np.ndarray) -> tuple[dict[str, np.ndarray], float]:
        """Return per-head probabilities and the state value for one observation."""
        probabilities, values = self.forward_batch(
            np.asarray(observation, dtype=np.float64)[None, :]
        )
        return {name: probs[0] for name, probs in probabilities.items()}, float(values[0])

    # -- backward -------------------------------------------------------------------------
    def backward(
        self,
        head_grad_logits: Mapping[str, np.ndarray],
        value_grad: float | np.ndarray,
    ) -> None:
        """Backpropagate per-head logit gradients and the value-head gradient.

        ``head_grad_logits`` maps head name to a ``(K, size)`` batch of
        logit-gradient rows (a 1-D vector is a batch of one) and
        ``value_grad`` is the matching scalar or ``(K,)`` array.  Each row
        must come from the corresponding row of the most recent forward
        batch — the layer caches hold that batch.  Backpropagating K rows
        at once is bit-identical to K sequential single-row calls (the
        layer kernels reduce over the batch in row order).

        The caller is responsible for converting policy-gradient losses into
        gradients with respect to the head logits (see
        :class:`repro.rl.policy.CategoricalPolicy`).
        """
        grads = {}
        for name, grad_logits in head_grad_logits.items():
            matrix = np.asarray(grad_logits)
            grads[name] = matrix[None, :] if matrix.ndim == 1 else matrix
        value_column = np.asarray(value_grad, dtype=np.float64).reshape(-1, 1)
        count = (
            next(iter(grads.values())).shape[0] if grads else value_column.shape[0]
        )
        width = self.trunk[-1].bias.shape[0] if self.trunk else self.observation_size
        grad_hidden = np.zeros((count, width))
        for name, grad_logits in grads.items():
            grad_hidden = grad_hidden + self.heads[name].backward(grad_logits)
        grad_hidden = grad_hidden + self.value_head.backward(value_column)
        for layer in reversed(self.trunk):
            grad_hidden = layer.backward(grad_hidden)

    def zero_grad(self) -> None:
        for layer in self.trunk:
            layer.zero_grad()
        for head in self.heads.values():
            head.zero_grad()
        self.value_head.zero_grad()

    def parameters(self) -> list[tuple[np.ndarray, np.ndarray]]:
        # Handing out the parameter buffers is how the optimiser mutates
        # them in place, so conservatively assume they change.
        self.weights_version += 1
        params: list[tuple[np.ndarray, np.ndarray]] = []
        for layer in self.trunk:
            params.extend(layer.parameters())
        for head in self.heads.values():
            params.extend(head.parameters())
        params.extend(self.value_head.parameters())
        return params

    def num_parameters(self) -> int:
        return sum(weight.size for weight, _ in self.parameters())

    # -- structural state export/import ---------------------------------------------------
    def named_parameters(self) -> list[tuple[str, np.ndarray]]:
        """Every weight array with a stable name, in :meth:`parameters` order.

        The order (trunk layers, heads in insertion order, value head; weight
        then bias each) is the contract checkpoints and optimizer-state
        serialization rely on.
        """
        named: list[tuple[str, np.ndarray]] = []
        for index, layer in enumerate(self.trunk):
            named.append((f"trunk.{index}.weight", layer.weight))
            named.append((f"trunk.{index}.bias", layer.bias))
        for name, head in self.heads.items():
            named.append((f"head.{name}.weight", head.weight))
            named.append((f"head.{name}.bias", head.bias))
        named.append(("value.weight", self.value_head.weight))
        named.append(("value.bias", self.value_head.bias))
        return named

    def export_state(self) -> list[tuple[str, str, tuple[int, ...], bytes]]:
        """The network weights as ``(name, dtype, shape, raw bytes)`` tuples.

        Structural serialization (no pickled arrays): reloading reconstructs
        the exact buffers, so an exported-and-reloaded network is bit-identical
        to the original.
        """
        return [
            (name, array.dtype.str, tuple(array.shape), array.tobytes())
            for name, array in self.named_parameters()
        ]

    def load_state(self, state: list[tuple[str, str, tuple[int, ...], bytes]]) -> None:
        """Load an :meth:`export_state` payload *in place*.

        In-place assignment keeps every existing alias valid — optimizer
        moments keyed by array identity, layers holding the same buffers —
        which is what makes checkpoint restore transparent to the trainer.
        Structural mismatches (different architecture, head set or dataset
        schema) raise :class:`ValueError` rather than loading garbage.
        """
        named = self.named_parameters()
        if len(state) != len(named):
            raise ValueError(
                f"state has {len(state)} buffers, network expects {len(named)}"
            )
        staged: list[tuple[np.ndarray, np.ndarray]] = []
        for (name, array), (saved_name, dtype_str, shape, raw) in zip(named, state):
            if saved_name != name:
                raise ValueError(
                    f"state buffer {saved_name!r} does not match network "
                    f"parameter {name!r}"
                )
            loaded = np.frombuffer(raw, dtype=np.dtype(dtype_str)).reshape(shape)
            if loaded.shape != array.shape:
                raise ValueError(
                    f"parameter {name!r}: stored shape {loaded.shape} does not "
                    f"match network shape {array.shape}"
                )
            staged.append((array, loaded))
        # All-or-nothing: validate every buffer before mutating any.
        for array, loaded in staged:
            array[...] = loaded
        self.weights_version += 1
