"""Simple hyper-parameter schedules used during training."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LinearSchedule:
    """Linearly interpolate from ``start`` to ``end`` over ``duration`` steps."""

    start: float
    end: float
    duration: int

    def value(self, step: int) -> float:
        if self.duration <= 0:
            return self.end
        fraction = min(max(step / self.duration, 0.0), 1.0)
        return self.start + fraction * (self.end - self.start)


@dataclass(frozen=True)
class ConstantSchedule:
    """A schedule that always returns the same value."""

    constant: float

    def value(self, step: int) -> float:  # noqa: ARG002 - signature parity
        return self.constant


@dataclass(frozen=True)
class ExponentialDecaySchedule:
    """Multiply ``start`` by ``decay`` every ``interval`` steps, floored at ``minimum``."""

    start: float
    decay: float = 0.99
    interval: int = 100
    minimum: float = 0.0

    def value(self, step: int) -> float:
        periods = step // max(1, self.interval)
        return max(self.minimum, self.start * (self.decay**periods))
