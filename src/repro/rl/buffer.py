"""Episode storage for on-policy training."""

from __future__ import annotations

from dataclasses import dataclass, field

from .policy import PolicyDecision


@dataclass
class Transition:
    """One agent step: the decision taken and the observed reward."""

    decision: PolicyDecision
    reward: float
    done: bool


@dataclass
class EpisodeBuffer:
    """Collects the transitions of one episode and computes returns."""

    transitions: list[Transition] = field(default_factory=list)

    def add(self, decision: PolicyDecision, reward: float, done: bool) -> None:
        self.transitions.append(Transition(decision, reward, done))

    def __len__(self) -> int:
        return len(self.transitions)

    def total_reward(self) -> float:
        return sum(t.reward for t in self.transitions)

    def returns(self, discount: float = 0.99) -> list[float]:
        """Discounted return from each step to the end of the episode."""
        result: list[float] = []
        running = 0.0
        for transition in reversed(self.transitions):
            running = transition.reward + discount * running
            result.append(running)
        result.reverse()
        return result

    def clear(self) -> None:
        self.transitions.clear()
