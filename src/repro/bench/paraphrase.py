"""Deterministic goal paraphrasing.

The paper populates goal templates and then paraphrases them with ChatGPT to
obtain natural-sounding analytical tasks (Figure 4).  Offline we simulate the
paraphraser with a deterministic rule-based rewriter: seeded selection among
several sentence frames, verb/synonym substitutions, and light re-ordering.
The output is varied enough to exercise the NL→LDX component's robustness to
surface form, which is what the paraphrasing step is for.
"""

from __future__ import annotations

import hashlib

_FRAMES = (
    "{goal}.",
    "{goal}, please.",
    "I would like to {goal_lower}.",
    "Your task: {goal_lower}.",
    "Can you {goal_lower}?",
    "We need to {goal_lower} for an upcoming report.",
    "As part of the analysis, {goal_lower}.",
)

_SYNONYMS = (
    ("Find", "Identify"),
    ("Find", "Discover"),
    ("Examine", "Analyze"),
    ("Examine", "Look into"),
    ("Survey", "Review"),
    ("Investigate", "Dig into"),
    ("Highlight", "Surface"),
    ("Explore", "Investigate"),
    ("characteristics", "properties"),
    ("interesting", "notable"),
    ("different", "atypical"),
    ("records", "entries"),
)


def _stable_hash(text: str) -> int:
    return int(hashlib.sha256(text.encode("utf-8")).hexdigest()[:8], 16)


def paraphrase(goal: str, variant: int = 0) -> str:
    """Return a deterministic paraphrase of *goal*.

    The same ``(goal, variant)`` pair always produces the same output, which
    keeps the benchmark reproducible.
    """
    seed = _stable_hash(goal) + variant
    text = goal.strip().rstrip(".")
    # Apply up to two synonym substitutions selected by the seed.
    for offset in range(2):
        source, target = _SYNONYMS[(seed + offset * 7) % len(_SYNONYMS)]
        if source in text:
            text = text.replace(source, target, 1)
        elif source.lower() in text:
            text = text.replace(source.lower(), target.lower(), 1)
    frame = _FRAMES[seed % len(_FRAMES)]
    sentence = frame.format(goal=text, goal_lower=text[0].lower() + text[1:])
    return sentence[0].upper() + sentence[1:]


def paraphrases(goal: str, count: int) -> list[str]:
    """Distinct paraphrases of *goal* (at most *count*, deduplicated)."""
    seen: dict[str, None] = {}
    variant = 0
    while len(seen) < count and variant < count * 4:
        seen.setdefault(paraphrase(goal, variant), None)
        variant += 1
    return list(seen)
