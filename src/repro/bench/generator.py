"""Benchmark dataset generator for goal-oriented ADE (Section 7.1, Figure 4).

The generator follows the paper's scheme: start from the eight meta-goal
templates, populate the goal and LDX templates with dataset-specific values
(attributes, operators, predicates, aggregations), then paraphrase the
populated goal description.  The result is a corpus of goal / gold-LDX pairs
over the Netflix, Flights and Play Store datasets — 182 instances with the
per-meta-goal counts of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.ldx.ast import LdxQuery
from repro.ldx.parser import parse_ldx

from .metagoals import META_GOALS, MetaGoal
from .paraphrase import paraphrase

#: Text rendering of filter operators used inside goal descriptions.
_OP_TEXT = {
    "eq": "equal to",
    "neq": "different from",
    "gt": "greater than",
    "ge": "at least",
    "lt": "less than",
    "le": "at most",
    "contains": "containing",
}

#: Complement operator used by the "unusual subset" meta-goal.
_COMPLEMENT = {"eq": "neq", "neq": "eq", "ge": "lt", "gt": "le", "le": "gt", "lt": "ge"}


@dataclass(frozen=True)
class SlotPool:
    """Dataset-specific values available for template population."""

    dataset: str
    domain: str
    entity_attrs: tuple[str, ...]
    aspects: tuple[str, ...]
    subset_filters: tuple[tuple[str, str, str], ...]  # (attr, op, term)
    survey_attrs: tuple[str, ...]
    investigate_attrs: tuple[str, ...]
    contrast_attrs: tuple[str, ...]
    agg_funcs: tuple[str, ...] = ("count", "mean")


SLOT_POOLS: dict[str, SlotPool] = {
    "netflix": SlotPool(
        dataset="netflix",
        domain="titles",
        entity_attrs=("country", "rating", "director"),
        aspects=("viewing habits", "title characteristics", "catalogue composition"),
        subset_filters=(
            ("type", "eq", "TV Show"),
            ("country", "eq", "India"),
            ("rating", "eq", "TV-MA"),
            ("release_year", "ge", "2015"),
            ("duration", "ge", "120"),
            ("listed_in", "eq", "Dramas"),
        ),
        survey_attrs=("rating", "duration", "release_year", "type"),
        investigate_attrs=("rating", "country", "listed_in", "type"),
        contrast_attrs=("country", "rating", "listed_in"),
    ),
    "flights": SlotPool(
        dataset="flights",
        domain="flights",
        entity_attrs=("airline", "origin_airport"),
        aspects=("delay behaviour", "traffic patterns", "cancellation behaviour"),
        subset_filters=(
            ("delay_reason", "eq", "weather"),
            ("month", "ge", "6"),
            ("distance", "ge", "2000"),
            ("origin_airport", "neq", "BOS"),
            ("departure_delay", "ge", "60"),
            ("cancelled", "eq", "1"),
        ),
        survey_attrs=("departure_delay", "arrival_delay", "distance", "month"),
        investigate_attrs=("delay_reason", "airline", "month", "origin_airport"),
        contrast_attrs=("airline", "origin_airport", "delay_reason"),
    ),
    "playstore": SlotPool(
        dataset="playstore",
        domain="apps",
        entity_attrs=("category", "content_rating"),
        aspects=("pricing", "popularity", "quality"),
        subset_filters=(
            ("installs", "ge", "1000000"),
            ("price", "gt", "0"),
            ("rating", "ge", "4.5"),
            ("category", "eq", "GAME"),
            ("content_rating", "eq", "Teen"),
            ("size_mb", "ge", "100"),
        ),
        survey_attrs=("price", "rating", "installs", "reviews"),
        investigate_attrs=("category", "content_rating", "android_version", "installs"),
        contrast_attrs=("category", "content_rating", "android_version"),
    ),
}


@dataclass(frozen=True)
class BenchmarkInstance:
    """One (analytical goal, gold LDX) pair of the benchmark."""

    instance_id: int
    meta_goal_id: int
    meta_goal_name: str
    dataset: str
    goal: str
    ldx_text: str

    def ldx_query(self) -> LdxQuery:
        """Parse the gold LDX text (always valid by construction)."""
        return parse_ldx(self.ldx_text)


@dataclass
class Benchmark:
    """The full goal-oriented ADE benchmark."""

    instances: list[BenchmarkInstance] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.instances)

    def by_meta_goal(self, meta_goal_id: int) -> list[BenchmarkInstance]:
        return [inst for inst in self.instances if inst.meta_goal_id == meta_goal_id]

    def by_dataset(self, dataset: str) -> list[BenchmarkInstance]:
        return [inst for inst in self.instances if inst.dataset == dataset]

    def counts_per_meta_goal(self) -> dict[int, int]:
        counts: dict[int, int] = {}
        for instance in self.instances:
            counts[instance.meta_goal_id] = counts.get(instance.meta_goal_id, 0) + 1
        return counts

    def overview_rows(self) -> list[dict[str, object]]:
        """Rows of Table 1: meta-goal, example goal and instance count."""
        counts = self.counts_per_meta_goal()
        rows = []
        for meta in META_GOALS:
            example = next(
                (inst.goal for inst in self.instances if inst.meta_goal_id == meta.identifier),
                meta.example_goal,
            )
            rows.append(
                {
                    "meta_goal": meta.identifier,
                    "name": meta.name,
                    "example": example,
                    "instances": counts.get(meta.identifier, 0),
                }
            )
        return rows


def _slot_combinations(meta: MetaGoal, pool: SlotPool) -> Iterable[dict[str, str]]:
    """All slot assignments for one meta-goal and one dataset, in a stable order."""
    if meta.identifier == 1:
        for entity_attr in pool.entity_attrs:
            for aspect in pool.aspects:
                for agg in pool.agg_funcs:
                    yield {"entity_attr": entity_attr, "aspect": aspect, "agg": agg}
    elif meta.identifier in (2, 8):
        for attr, op, term in pool.subset_filters:
            yield {"attr": attr, "op": op, "op_text": _OP_TEXT[op], "term": term}
    elif meta.identifier == 3:
        for attr in pool.contrast_attrs:
            yield {"attr": attr}
    elif meta.identifier == 4:
        for attr in pool.survey_attrs:
            for agg in pool.agg_funcs:
                yield {"attr": attr, "agg": agg}
    elif meta.identifier == 5:
        for attr, op, term in pool.subset_filters:
            for agg in pool.agg_funcs:
                yield {
                    "attr": attr,
                    "op": op,
                    "op_text": _OP_TEXT[op],
                    "complement_op": _COMPLEMENT[op],
                    "term": term,
                    "agg": agg,
                }
    elif meta.identifier == 6:
        for attr in pool.investigate_attrs:
            yield {"attr": attr}
    elif meta.identifier == 7:
        for attr, op, term in pool.subset_filters:
            yield {
                "domain": pool.domain,
                "attr": attr,
                "op": op,
                "op_text": _OP_TEXT[op],
                "term": term,
            }
    else:  # pragma: no cover - all meta-goals handled above
        raise ValueError(f"unsupported meta-goal {meta.identifier}")


def _populate(meta: MetaGoal, slots: dict[str, str]) -> tuple[str, str]:
    """Fill the goal and LDX templates of *meta* with *slots*."""
    goal = meta.goal_template.format(**slots)
    ldx = meta.ldx_template.format(**slots).strip()
    return goal, ldx


def generate_benchmark(paraphrase_goals: bool = True) -> Benchmark:
    """Build the full benchmark (182 instances, Table 1 distribution)."""
    benchmark = Benchmark()
    instance_id = 0
    datasets = list(SLOT_POOLS)
    for meta in META_GOALS:
        produced = 0
        # Round-robin over datasets and their slot combinations until the
        # meta-goal's target count is reached.
        per_dataset = {name: list(_slot_combinations(meta, SLOT_POOLS[name])) for name in datasets}
        cursor = {name: 0 for name in datasets}
        variant = 0
        while produced < meta.target_instances:
            for dataset in datasets:
                if produced >= meta.target_instances:
                    break
                combos = per_dataset[dataset]
                if not combos:
                    continue
                slots = combos[cursor[dataset] % len(combos)]
                cursor[dataset] += 1
                goal, ldx = _populate(meta, slots)
                if paraphrase_goals:
                    goal = paraphrase(goal, variant)
                instance_id += 1
                benchmark.instances.append(
                    BenchmarkInstance(
                        instance_id=instance_id,
                        meta_goal_id=meta.identifier,
                        meta_goal_name=meta.name,
                        dataset=dataset,
                        goal=goal,
                        ldx_text=ldx,
                    )
                )
                produced += 1
            variant += 1
    return benchmark


def exemplar_instances(benchmark: Benchmark) -> list[BenchmarkInstance]:
    """One exemplar instance per meta-goal (the g1-g8 of Table 1)."""
    exemplars = []
    for meta in META_GOALS:
        instances = benchmark.by_meta_goal(meta.identifier)
        preferred = [inst for inst in instances if inst.dataset == meta.example_dataset]
        exemplars.append((preferred or instances)[0])
    return exemplars
