"""Goal-oriented ADE benchmark: meta-goals, templates and the 182-instance generator."""

from .generator import (
    SLOT_POOLS,
    Benchmark,
    BenchmarkInstance,
    SlotPool,
    exemplar_instances,
    generate_benchmark,
)
from .metagoals import META_GOALS, MetaGoal, meta_goal_by_id, total_target_instances
from .paraphrase import paraphrase, paraphrases

__all__ = [
    "Benchmark",
    "BenchmarkInstance",
    "META_GOALS",
    "MetaGoal",
    "SLOT_POOLS",
    "SlotPool",
    "exemplar_instances",
    "generate_benchmark",
    "meta_goal_by_id",
    "paraphrase",
    "paraphrases",
    "total_target_instances",
]
