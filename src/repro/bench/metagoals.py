"""The eight exploration meta-goals of the goal-oriented ADE benchmark (Table 1).

Each meta-goal couples a natural-language goal template with an LDX template.
Templates contain ``{placeholder}`` slots (domain, attribute, operator, term,
aggregation) that the benchmark generator populates per dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class MetaGoal:
    """One exploration meta-goal with its goal and LDX templates."""

    identifier: int
    name: str
    example_goal: str
    example_dataset: str
    goal_template: str
    ldx_template: str
    #: Placeholders the generator must fill for this meta-goal.
    placeholders: tuple[str, ...] = field(default_factory=tuple)
    #: Target number of benchmark instances (Table 1's "# Ex." column).
    target_instances: int = 20


META_GOALS: tuple[MetaGoal, ...] = (
    MetaGoal(
        identifier=1,
        name="Identify an uncommon entity",
        example_goal="Find an atypical country",
        example_dataset="netflix",
        goal_template="Find a {entity_attr} with different {aspect} than the rest of the data",
        ldx_template="""
ROOT CHILDREN <A1,A2>
A1 LIKE [F,{entity_attr},eq,(?<X>.*)] and CHILDREN {{B1}}
B1 LIKE [G,(?<Y>.*),{agg},.*]
A2 LIKE [F,{entity_attr},neq,(?<X>.*)] and CHILDREN {{B2}}
B2 LIKE [G,(?<Y>.*),{agg},.*]
""",
        placeholders=("entity_attr", "aspect", "agg"),
        target_instances=18,
    ),
    MetaGoal(
        identifier=2,
        name="Examine a phenomenon (subset)",
        example_goal="Examine characteristics of successful TV shows",
        example_dataset="netflix",
        goal_template="Examine the characteristics of records with {attr} {op_text} {term}",
        ldx_template="""
ROOT CHILDREN <A1>
A1 LIKE [F,{attr},{op},{term}] and CHILDREN {{B1,B2}}
B1 LIKE [G,.*]
B2 LIKE [G,.*]
""",
        placeholders=("attr", "op", "op_text", "term"),
        target_instances=16,
    ),
    MetaGoal(
        identifier=3,
        name="Discover contrasting subsets",
        example_goal="Find three actors with contrasting traits",
        example_dataset="netflix",
        goal_template="Find three values of {attr} with contrasting traits",
        ldx_template="""
ROOT CHILDREN <A1,A2,A3>
A1 LIKE [F,{attr},eq,.*] and CHILDREN {{B1}}
B1 LIKE [G,(?<Y>.*),.*]
A2 LIKE [F,{attr},eq,.*] and CHILDREN {{B2}}
B2 LIKE [G,(?<Y>.*),.*]
A3 LIKE [F,{attr},eq,.*] and CHILDREN {{B3}}
B3 LIKE [G,(?<Y>.*),.*]
""",
        placeholders=("attr",),
        target_instances=22,
    ),
    MetaGoal(
        identifier=4,
        name="Survey an attribute",
        example_goal="Survey apps' price",
        example_dataset="playstore",
        goal_template="Survey the {attr} attribute of the data",
        ldx_template="""
ROOT CHILDREN <A1,A2>
A1 LIKE [G,{attr},count,.*]
A2 LIKE [G,.*,{agg},{attr}]
""",
        placeholders=("attr", "agg"),
        target_instances=21,
    ),
    MetaGoal(
        identifier=5,
        name="Describe an unusual subset",
        example_goal="Highlight distinctive characteristics of summer-month flights",
        example_dataset="flights",
        goal_template="Highlight distinctive characteristics of records where {attr} {op_text} {term}, compared to the rest",
        ldx_template="""
ROOT CHILDREN <A1,A2>
A1 LIKE [F,{attr},{op},{term}] and CHILDREN {{B1}}
B1 LIKE [G,(?<Y>.*),{agg},.*]
A2 LIKE [F,{attr},{complement_op},{term}] and CHILDREN {{B2}}
B2 LIKE [G,(?<Y>.*),{agg},.*]
""",
        placeholders=("attr", "op", "op_text", "complement_op", "term", "agg"),
        target_instances=27,
    ),
    MetaGoal(
        identifier=6,
        name="Investigate various aspects of an attribute",
        example_goal="Investigate reasons for delay",
        example_dataset="flights",
        goal_template="Investigate different aspects of {attr}",
        ldx_template="""
ROOT CHILDREN <A1,A2>
A1 LIKE [G,{attr},count,.*]
A2 LIKE [F,{attr},.*,.*] and CHILDREN {{B1}}
B1 LIKE [G,.*]
""",
        placeholders=("attr",),
        target_instances=22,
    ),
    MetaGoal(
        identifier=7,
        name="Explore through a subset",
        example_goal="Analyze the dataset, with a focus on flights affected by weather-related delays",
        example_dataset="flights",
        goal_template="Explore the data, make sure to address interesting aspects of {domain} with {attr} {op_text} {term}",
        ldx_template="""
BEGIN DESCENDANTS <A1>
A1 LIKE [F,{attr},{op},{term}] and CHILDREN {{B1,B2}}
B1 LIKE [G,.*]
B2 LIKE [G,.*]
""",
        placeholders=("domain", "attr", "op", "op_text", "term"),
        target_instances=28,
    ),
    MetaGoal(
        identifier=8,
        name="Highlight interesting sub-groups",
        example_goal="Highlight interesting sub-groups of apps with at least 1M installs",
        example_dataset="playstore",
        goal_template="Highlight interesting sub-groups of records with {attr} {op_text} {term}",
        ldx_template="""
ROOT CHILDREN <A1>
A1 LIKE [F,{attr},{op},{term}] and CHILDREN {{B1,+}}
B1 LIKE [G,.*]
""",
        placeholders=("attr", "op", "op_text", "term"),
        target_instances=28,
    ),
)


def meta_goal_by_id(identifier: int) -> MetaGoal:
    """Look up a meta-goal by its Table 1 identifier (1-8)."""
    for meta in META_GOALS:
        if meta.identifier == identifier:
            return meta
    raise KeyError(f"unknown meta-goal id {identifier}")


def total_target_instances() -> int:
    """Total number of benchmark instances across meta-goals (182 in the paper)."""
    return sum(meta.target_instances for meta in META_GOALS)
