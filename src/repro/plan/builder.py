"""Building and canonicalizing logical plans.

The builders translate between the executable operation vocabulary
(:mod:`repro.explore.operations`) and the plan AST, and
:func:`canonicalize` reduces a raw plan to the normal form whose
fingerprint keys the execution caches:

1. **Back resolution** — ``BackNode`` steps are resolved by replaying the
   pipeline as a stack (push filter/group, pop on back, clamped at the
   base), so ``filter → back`` pairs vanish and only the net pipeline
   remains.  Root nodes are no-ops and are dropped.
2. **Duplicate-filter merging** — filters are idempotent (a predicate's
   row mask is deterministic), so identical predicates within one adjacent
   filter run collapse to one.
3. **Filter commutation** — adjacent filters AND-commute (each row's mask
   bit depends only on that row), so every maximal run of adjacent filters
   is sorted by signature.  Group-by nodes are commutation barriers: they
   change the schema and row identity, so filters never move across them.

Canonical plans are closed under prefixes — cutting a canonical plan after
any node yields a canonical plan — which is what lets incremental
(per-step) execution cache every intermediate view under a canonical
prefix key.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.explore.operations import (
    BackOperation,
    FilterOperation,
    GroupAggOperation,
    Operation,
    RootOperation,
)

from .nodes import BackNode, FilterNode, GroupNode, LogicalPlan, PlanNode, RootNode

#: The empty (root-only) plan every session starts from.
EMPTY_PLAN = LogicalPlan(())


def node_from_operation(operation: Operation) -> PlanNode:
    """The plan node mirroring *operation* (signatures match exactly)."""
    if isinstance(operation, FilterOperation):
        return FilterNode(attr=operation.attr, op=operation.op, term=operation.term)
    if isinstance(operation, GroupAggOperation):
        return GroupNode(
            group_attr=operation.group_attr,
            agg_func=operation.agg_func,
            agg_attr=operation.agg_attr,
        )
    if isinstance(operation, BackOperation):
        return BackNode(steps=operation.steps)
    if isinstance(operation, RootOperation):
        return RootNode()
    raise ValueError(f"cannot plan operation {operation!r}")


def operation_from_node(node: PlanNode) -> Operation:
    """The executable operation mirroring *node*."""
    if isinstance(node, FilterNode):
        return FilterOperation(attr=node.attr, op=node.op, term=node.term)
    if isinstance(node, GroupNode):
        return GroupAggOperation(
            group_attr=node.group_attr, agg_func=node.agg_func, agg_attr=node.agg_attr
        )
    if isinstance(node, BackNode):
        return BackOperation(steps=node.steps)
    if isinstance(node, RootNode):
        return RootOperation()
    raise ValueError(f"cannot convert plan node {node!r} to an operation")


def plan_from_operations(operations: Iterable[Operation]) -> LogicalPlan:
    """The raw (uncanonicalized) plan of a flat operation list (backs included)."""
    return LogicalPlan(tuple(node_from_operation(operation) for operation in operations))


def plan_for_node(node) -> LogicalPlan:
    """The canonical plan of one session node's root-to-node operation path.

    Accepts any object with ``operation`` / ``parent`` attributes (a
    :class:`~repro.explore.session.SessionNode` — duck-typed to avoid a
    module cycle).  The path through a session tree contains no back
    operations, so canonicalization only sorts and merges filter runs.
    """
    operations: list[Operation] = []
    while node is not None and getattr(node, "parent", None) is not None:
        operations.append(node.operation)
        node = node.parent
    operations.reverse()
    return canonicalize(plan_from_operations(operations))


def plan_from_session(session) -> LogicalPlan:
    """The canonical plan of a session's *current* view.

    Accepts an :class:`~repro.explore.session.ExplorationSession` (or any
    object with a ``current`` node).  Back operations never appear on the
    root-to-current path — the session tree already resolved them — so
    this is exactly the plan the next operation extends.
    """
    return plan_for_node(session.current)


def canonicalize(plan: LogicalPlan) -> LogicalPlan:
    """Reduce *plan* to its canonical normal form (see the module docstring)."""
    # 1. Resolve backs by stack replay; drop root no-ops.
    stack: list[PlanNode] = []
    for node in plan.steps:
        if isinstance(node, BackNode):
            for _ in range(max(1, node.steps)):
                if not stack:
                    break
                stack.pop()
        elif isinstance(node, RootNode):
            continue
        else:
            stack.append(node)
    # 2 + 3. Sort each maximal adjacent filter run and merge duplicates.
    out: list[PlanNode] = []
    i = 0
    while i < len(stack):
        if not isinstance(stack[i], FilterNode):
            out.append(stack[i])
            i += 1
            continue
        j = i
        while j < len(stack) and isinstance(stack[j], FilterNode):
            j += 1
        out.extend(_sorted_unique_filters(stack[i:j]))
        i = j
    return LogicalPlan(tuple(out))


def _sorted_unique_filters(run: Sequence[PlanNode]) -> list[PlanNode]:
    """One adjacent filter run, sorted by signature with duplicates merged."""
    ordered = sorted(run, key=lambda node: node.signature())
    unique: list[PlanNode] = [ordered[0]]
    for node in ordered[1:]:
        if node.signature() != unique[-1].signature():
            unique.append(node)
    return unique
