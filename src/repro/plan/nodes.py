"""Logical-plan nodes: the canonical relational form of exploration pipelines.

An exploration pipeline — the path of operations from the session root to
one view — is *syntactic*: ``filter A → filter B`` and ``filter B →
filter A`` are different operation lists that denote the same relation.
This module gives pipelines a relational AST (in the shape of JQL-style
``Filter | Join | Project | Union`` algebras): a :class:`LogicalPlan` is an
ordered tuple of plan nodes mirroring the executable operation vocabulary,
and :func:`repro.plan.builder.canonicalize` reduces many surface orderings
to one normal form whose :meth:`LogicalPlan.fingerprint` keys every cache
tier.

Nodes are immutable value objects whose ``signature()`` matches the
corresponding :meth:`repro.explore.operations.Operation.signature` exactly,
so plan fingerprints and operation signatures hash the same field values.
Join and union pipelines (ROADMAP item 2) should land here as new node
types — the canonicalizer and fingerprint extend per node kind, the eager
operation vocabulary does not need to grow.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Iterable

from repro.dataframe.aggregates import canonical_agg
from repro.dataframe.expressions import canonical_operator
from repro.explore.operations import (
    KIND_BACK,
    KIND_FILTER,
    KIND_GROUP,
    KIND_ROOT,
)


@dataclass(frozen=True)
class PlanNode:
    """Base class of logical-plan nodes."""

    @property
    def kind(self) -> str:
        raise NotImplementedError

    def signature(self) -> tuple[str, ...]:
        """Positional field tuple; identical to the mirrored operation's."""
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class RootNode(PlanNode):
    """The unmodified base table (only ever appears as a leading no-op)."""

    @property
    def kind(self) -> str:
        return KIND_ROOT

    def signature(self) -> tuple[str, ...]:
        return (KIND_ROOT,)

    def describe(self) -> str:
        return "ROOT"


@dataclass(frozen=True)
class FilterNode(PlanNode):
    """Keep the rows where ``attr <op> term`` (mirrors ``FilterOperation``)."""

    attr: str
    op: str
    term: Any

    def __post_init__(self) -> None:
        # Same normalisation as FilterOperation: aliases like "==" must not
        # fork the fingerprint space.
        object.__setattr__(self, "op", canonical_operator(self.op))

    @property
    def kind(self) -> str:
        return KIND_FILTER

    def signature(self) -> tuple[str, ...]:
        return (KIND_FILTER, str(self.attr), str(self.op), str(self.term))

    def describe(self) -> str:
        return f"FILTER {self.attr} {self.op} {self.term}"


@dataclass(frozen=True)
class GroupNode(PlanNode):
    """Group by ``group_attr``, aggregate ``agg_attr`` with ``agg_func``."""

    group_attr: str
    agg_func: str
    agg_attr: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "agg_func", canonical_agg(self.agg_func))

    @property
    def kind(self) -> str:
        return KIND_GROUP

    def signature(self) -> tuple[str, ...]:
        return (KIND_GROUP, str(self.group_attr), str(self.agg_func), str(self.agg_attr))

    def describe(self) -> str:
        return f"GROUP {self.group_attr} {self.agg_func}({self.agg_attr})"


@dataclass(frozen=True)
class BackNode(PlanNode):
    """Undo the last *steps* pipeline stages (resolved away by canonicalize)."""

    steps: int = 1

    @property
    def kind(self) -> str:
        return KIND_BACK

    def signature(self) -> tuple[str, ...]:
        return (KIND_BACK, str(self.steps))

    def describe(self) -> str:
        return f"BACK {self.steps}"


@dataclass(frozen=True)
class LogicalPlan:
    """An ordered pipeline of plan nodes applied to one base table.

    Plans are immutable; :meth:`extend` returns a new plan.  The
    :meth:`fingerprint` of a *canonical* plan (see
    :func:`repro.plan.builder.canonicalize`) is the semantic cache key:
    every surface ordering that canonicalizes to the same plan shares it.
    """

    steps: tuple[PlanNode, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "steps", tuple(self.steps))

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    def extend(self, node: PlanNode) -> "LogicalPlan":
        """A new plan with *node* appended."""
        return LogicalPlan(self.steps + (node,))

    def signatures(self) -> tuple[tuple[str, ...], ...]:
        """The per-node signature tuples, in pipeline order (hashable)."""
        return tuple(node.signature() for node in self.steps)

    def fingerprint(self) -> str:
        """Stable blake2b digest over the type-tagged node signatures.

        Computed once per instance (plans are immutable) through a
        length-prefixed encoding, so the key is canonical across processes
        — no reliance on ``repr`` or pickle memoisation.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            digest = hashlib.blake2b(digest_size=20)
            for signature in self.signatures():
                digest.update(b"N" + str(len(signature)).encode() + b":")
                for field in signature:
                    raw = str(field).encode("utf-8")
                    digest.update(str(len(raw)).encode() + b":" + raw)
            cached = digest.hexdigest()
            # Frozen dataclasses only guard __setattr__; the instance dict
            # is writable and not part of equality.
            self.__dict__["_fingerprint"] = cached
        return cached

    def describe(self) -> str:
        """Human-readable one-liner, e.g. for notebook and log rendering."""
        if not self.steps:
            return "ROOT"
        return " -> ".join(node.describe() for node in self.steps)

    def __repr__(self) -> str:
        return f"LogicalPlan({self.describe()!r})"


def plan_of(steps: Iterable[PlanNode]) -> LogicalPlan:
    """Convenience constructor from any iterable of nodes."""
    return LogicalPlan(tuple(steps))
