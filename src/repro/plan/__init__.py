"""Logical query plans: canonical form, fingerprints and builders.

The plan subsystem gives exploration pipelines a semantic identity:
operation lists build a :class:`LogicalPlan`, :func:`canonicalize` reduces
commuted/duplicated/undone orderings to one normal form, and the canonical
plan's :meth:`~LogicalPlan.fingerprint` keys results across every cache
tier (memory LRU, sqlite disk tier, result store).  Execution on top of
plans lives in :meth:`repro.explore.executor.QueryExecutor.execute_plan`,
which fuses filter chains and filter→group-by pipelines into single
vectorised passes.
"""

from .builder import (
    EMPTY_PLAN,
    canonicalize,
    node_from_operation,
    operation_from_node,
    plan_for_node,
    plan_from_operations,
    plan_from_session,
)
from .nodes import (
    BackNode,
    FilterNode,
    GroupNode,
    LogicalPlan,
    PlanNode,
    RootNode,
    plan_of,
)

__all__ = [
    "BackNode",
    "EMPTY_PLAN",
    "FilterNode",
    "GroupNode",
    "LogicalPlan",
    "PlanNode",
    "RootNode",
    "canonicalize",
    "node_from_operation",
    "operation_from_node",
    "plan_for_node",
    "plan_from_operations",
    "plan_from_session",
    "plan_of",
]
