"""The legacy LINX facade: a thin wrapper over :class:`repro.engine.LinxEngine`.

This module keeps the original one-call API (goal → exploration notebook)
working while the engine provides the actual pipeline.  New code should use
the engine directly — declarative :class:`~repro.engine.request.ExploreRequest`
objects, batch execution via :meth:`~repro.engine.core.LinxEngine.explore_many`
and serializable :class:`~repro.engine.result.ExploreResult` responses::

    from repro.engine import ExploreRequest, LinxEngine

    engine = LinxEngine()
    result = engine.explore(ExploreRequest(goal="...", dataset="netflix"))

— or, served over HTTP with a scheduler, result store and SSE progress, the
:mod:`repro.engine.server` front-end (``python -m repro.engine.server``).

The wrapper's behavioural additions over the original facade: the permissive
fallback that replaces unparseable specifications is now *surfaced*
(:attr:`LinxOutput.derivation_fallback` plus a warning) instead of silent,
and repeated :meth:`Linx.explore` calls share the engine's execution cache
and few-shot bank instead of rebuilding them per instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cdrl.agent import CdrlConfig, CdrlResult, LinxCdrlAgent
from repro.dataframe.table import DataTable
from repro.datasets.registry import load_dataset
from repro.engine.core import LinxEngine
from repro.engine.request import ExploreRequest
from repro.explore.session import ExplorationSession
from repro.ldx.ast import LdxQuery
from repro.llm.interface import LLMClient
from repro.notebook.insights import Insight
from repro.notebook.render import Notebook


@dataclass
class LinxOutput:
    """Everything LINX produces for one (dataset, goal) request."""

    goal: str
    dataset_name: str
    ldx_text: str
    query: Optional[LdxQuery]
    session: ExplorationSession
    notebook: Notebook
    insights: list[Insight] = field(default_factory=list)
    fully_compliant: bool = False
    #: True when the specification (derived or explicit) failed to parse and
    #: the permissive fallback specification was substituted.
    derivation_fallback: bool = False
    warnings: list[str] = field(default_factory=list)

    def markdown(self) -> str:
        return self.notebook.to_markdown()


class Linx:
    """Language-driven generative system for goal-oriented data exploration.

    Example
    -------
    >>> from repro import Linx
    >>> linx = Linx()
    >>> output = linx.explore("netflix",
    ...     "Find a country with different viewing habits than the rest of the world")
    >>> print(output.markdown())            # doctest: +SKIP
    """

    def __init__(
        self,
        llm_client: LLMClient | None = None,
        cdrl_config: CdrlConfig | None = None,
        engine: LinxEngine | None = None,
        stages: dict[str, str] | None = None,
    ):
        """``stages`` selects pipeline stages by registered name (e.g.
        ``{"session_generator": "atena"}``); see :mod:`repro.engine.registry`.
        Ignored when an explicit ``engine`` is supplied."""
        self.engine = engine or LinxEngine(
            llm_client=llm_client, cdrl_config=cdrl_config, stages=stages
        )
        self.llm_client = self.engine.llm_client
        self.cdrl_config = self.engine.cdrl_config

    # -- step 1: specification derivation -------------------------------------------------
    def derive_specifications(self, dataset_name: str, goal: str) -> str:
        """Derive LDX specification text from the analytical goal (Section 6)."""
        return self.engine.derive_specifications(dataset_name, goal)

    # -- step 2: constrained session generation --------------------------------------------
    def generate_session(
        self, dataset: DataTable, ldx_text: str, episodes: Optional[int] = None
    ) -> CdrlResult:
        """Generate a compliant exploration session for explicit LDX specifications."""
        agent = LinxCdrlAgent(
            dataset, ldx_text, config=self.cdrl_config, cache=self.engine.cache
        )
        return agent.run(episodes=episodes)

    # -- end-to-end ------------------------------------------------------------------------
    def explore(
        self,
        dataset: DataTable | str,
        goal: str,
        ldx_text: Optional[str] = None,
        episodes: Optional[int] = None,
    ) -> LinxOutput:
        """Run the full LINX workflow.

        ``dataset`` may be a :class:`DataTable` or the name of a registered
        benchmark dataset.  Passing ``ldx_text`` skips the derivation step
        (useful when the user writes LDX manually, as in the ATENA-PRO demo).
        """
        table = load_dataset(dataset) if isinstance(dataset, str) else dataset
        request = ExploreRequest(
            goal=goal,
            dataset=table.name,
            ldx_text=ldx_text,
            episodes=episodes,
        )
        result = self.engine.explore(request, table=table)
        artifacts = result.artifacts
        assert artifacts is not None and artifacts.session is not None
        return LinxOutput(
            goal=goal,
            dataset_name=result.dataset_name,
            ldx_text=result.ldx_text,
            query=artifacts.query,
            session=artifacts.session,
            notebook=artifacts.notebook,
            insights=artifacts.insights,
            fully_compliant=result.fully_compliant,
            derivation_fallback=result.derivation_fallback,
            warnings=list(result.warnings),
        )
