"""The end-to-end LINX system: natural-language goal → exploration notebook.

This facade wires the two steps of Section 3 together:

1. **Specification derivation** — the analytical goal and a dataset
   description are turned into LDX specifications via the chained
   NL→PyLDX→LDX prompting pipeline (Section 6), using the configured LLM
   client (offline: the simulated GPT-4 tier).
2. **Constrained session generation** — the dataset and the derived
   specifications are handed to the CDRL engine (Section 5), which produces
   a specification-compliant, high-utility exploration session.

The result is returned as a :class:`LinxOutput` bundling the session, the
rendered notebook, the derived specifications and extracted insights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.bench.generator import generate_benchmark
from repro.cdrl.agent import CdrlConfig, LinxCdrlAgent
from repro.dataframe.table import DataTable
from repro.datasets.registry import load_dataset
from repro.explore.session import ExplorationSession
from repro.ldx.ast import LdxQuery
from repro.ldx.parser import parse_ldx, try_parse_ldx
from repro.llm.interface import LLMClient
from repro.llm.mock import gpt4_client
from repro.nl2ldx.fewshot import SCENARIOS, FewShotBank
from repro.nl2ldx.pipeline import ChainedPipeline
from repro.notebook.insights import Insight, extract_insights
from repro.notebook.render import Notebook, render_notebook


@dataclass
class LinxOutput:
    """Everything LINX produces for one (dataset, goal) request."""

    goal: str
    dataset_name: str
    ldx_text: str
    query: Optional[LdxQuery]
    session: ExplorationSession
    notebook: Notebook
    insights: list[Insight] = field(default_factory=list)
    fully_compliant: bool = False

    def markdown(self) -> str:
        return self.notebook.to_markdown()


class Linx:
    """Language-driven generative system for goal-oriented data exploration.

    Example
    -------
    >>> from repro import Linx
    >>> linx = Linx()
    >>> output = linx.explore("netflix",
    ...     "Find a country with different viewing habits than the rest of the world")
    >>> print(output.markdown())            # doctest: +SKIP
    """

    def __init__(
        self,
        llm_client: LLMClient | None = None,
        cdrl_config: CdrlConfig | None = None,
    ):
        self.llm_client = llm_client or gpt4_client()
        self.cdrl_config = cdrl_config or CdrlConfig(episodes=150)
        # The few-shot bank is built from the benchmark's goal/LDX pairs.
        self._benchmark = generate_benchmark()
        self._bank = FewShotBank(self._benchmark)
        self._pipeline = ChainedPipeline(self.llm_client, self._bank)

    # -- step 1: specification derivation -------------------------------------------------
    def derive_specifications(self, dataset_name: str, goal: str) -> str:
        """Derive LDX specification text from the analytical goal (Section 6)."""
        from repro.bench.generator import BenchmarkInstance

        probe = BenchmarkInstance(
            instance_id=-1,
            meta_goal_id=0,
            meta_goal_name="ad-hoc",
            dataset=dataset_name,
            goal=goal,
            ldx_text="ROOT CHILDREN <A1>\nA1 LIKE [G,.*]",
        )
        scenario = SCENARIOS[0]  # use every available example (seen dataset & meta-goal)
        result = self._pipeline.derive(probe, scenario)
        return result.ldx_text

    # -- step 2: constrained session generation --------------------------------------------
    def generate_session(
        self, dataset: DataTable, ldx_text: str, episodes: Optional[int] = None
    ):
        """Generate a compliant exploration session for explicit LDX specifications."""
        agent = LinxCdrlAgent(dataset, ldx_text, config=self.cdrl_config)
        return agent.run(episodes=episodes)

    # -- end-to-end ------------------------------------------------------------------------
    def explore(
        self,
        dataset: DataTable | str,
        goal: str,
        ldx_text: Optional[str] = None,
        episodes: Optional[int] = None,
    ) -> LinxOutput:
        """Run the full LINX workflow.

        ``dataset`` may be a :class:`DataTable` or the name of a registered
        benchmark dataset.  Passing ``ldx_text`` skips the derivation step
        (useful when the user writes LDX manually, as in the ATENA-PRO demo).
        """
        table = load_dataset(dataset) if isinstance(dataset, str) else dataset
        if ldx_text is None:
            ldx_text = self.derive_specifications(table.name, goal)
        query = try_parse_ldx(ldx_text)
        if query is None:
            # Fall back to a permissive specification so the engine still produces
            # a useful (if less targeted) session instead of failing outright.
            ldx_text = "ROOT CHILDREN <A1,A2>\nA1 LIKE [F,.*]\nA2 LIKE [G,.*]"
            query = parse_ldx(ldx_text)
        result = self.generate_session(table, ldx_text, episodes=episodes)
        notebook = render_notebook(result.session, goal=goal)
        return LinxOutput(
            goal=goal,
            dataset_name=table.name,
            ldx_text=ldx_text,
            query=query,
            session=result.session,
            notebook=notebook,
            insights=extract_insights(result.session),
            fully_compliant=result.fully_compliant,
        )
