"""Tests for the service-oriented engine API (requests, results, batching)."""

from __future__ import annotations

import json

import pytest

from repro.cdrl import CdrlConfig
from repro.dataframe import DataTable
from repro.engine import (
    EVENT_EPISODE,
    EVENT_REQUEST_FINISHED,
    EVENT_REQUEST_STARTED,
    EVENT_STAGE_FINISHED,
    EVENT_STAGE_SKIPPED,
    EVENT_STAGE_STARTED,
    PERMISSIVE_LDX,
    STAGE_DERIVE,
    STAGE_GENERATE,
    STAGE_INSIGHTS,
    STAGE_ORDER,
    STAGE_RENDER,
    STATUS_COMPLETE,
    STATUS_FAILED,
    STATUS_SKIPPED,
    ExploreRequest,
    ExploreResult,
    LinxEngine,
    RequestValidationError,
    SessionOutcome,
    StageFailedError,
)
from repro.explore import session_from_operations
from repro.explore.operations import FilterOperation, GroupAggOperation
from repro.linx import Linx


@pytest.fixture
def netflix_mini() -> DataTable:
    return DataTable(
        {
            "country": ["India", "US", "US", "India", "UK", "US", "India", "UK", "US", "India"],
            "type": ["Movie"] * 4 + ["TV Show"] * 3 + ["Movie"] * 3,
            "rating": ["TV-14", "TV-MA", "TV-MA", "TV-14", "TV-MA", "PG", "TV-14", "R", "TV-MA", "TV-14"],
            "duration": [100, 50, 90, 110, 45, 95, 120, 105, 80, 99],
        },
        name="netflix",
    )


@pytest.fixture
def engine() -> LinxEngine:
    return LinxEngine(cdrl_config=CdrlConfig(episodes=15, seed=3))


def _request(comparison_query, **overrides) -> ExploreRequest:
    base = dict(
        goal="Find a country with different viewing habits than the rest of the world",
        dataset="netflix",
        ldx_text=comparison_query.render(),
        seed=3,
    )
    base.update(overrides)
    return ExploreRequest(**base)


class TestRequestValidation:
    def test_valid_request_passes(self):
        ExploreRequest(goal="g", dataset="netflix").validate()

    def test_empty_goal_rejected(self):
        with pytest.raises(RequestValidationError) as excinfo:
            ExploreRequest(goal="   ", dataset="netflix").validate()
        assert "goal" in excinfo.value.fields()

    def test_unknown_dataset_rejected(self):
        with pytest.raises(RequestValidationError) as excinfo:
            ExploreRequest(goal="g", dataset="no-such-dataset").validate()
        assert "dataset" in excinfo.value.fields()

    def test_bad_numeric_fields_all_reported_at_once(self):
        with pytest.raises(RequestValidationError) as excinfo:
            ExploreRequest(
                goal="g", dataset="netflix", num_rows=0, episodes=-5, seed="x"
            ).validate()
        assert set(excinfo.value.fields()) == {"num_rows", "episodes", "seed"}

    def test_bool_seed_rejected(self):
        with pytest.raises(RequestValidationError):
            ExploreRequest(goal="g", dataset="netflix", seed=True).validate()

    def test_blank_ldx_text_rejected(self):
        with pytest.raises(RequestValidationError) as excinfo:
            ExploreRequest(goal="g", dataset="netflix", ldx_text="  ").validate()
        assert "ldx_text" in excinfo.value.fields()

    def test_unsupported_schema_version_rejected(self):
        with pytest.raises(RequestValidationError) as excinfo:
            ExploreRequest(goal="g", dataset="netflix", schema_version="9.9").validate()
        assert "schema_version" in excinfo.value.fields()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(RequestValidationError) as excinfo:
            ExploreRequest.from_dict({"goal": "g", "dataset": "netflix", "bogus": 1})
        assert "bogus" in excinfo.value.fields()

    def test_from_dict_rejects_missing_required_fields(self):
        with pytest.raises(RequestValidationError) as excinfo:
            ExploreRequest.from_dict({"goal": "g"})
        assert "dataset" in excinfo.value.fields()

    def test_validation_error_serializes(self):
        with pytest.raises(RequestValidationError) as excinfo:
            ExploreRequest(goal="", dataset="netflix").validate()
        payload = excinfo.value.to_dict()
        assert payload["errors"][0]["field"] == "goal"

    def test_request_round_trips_through_json(self):
        request = ExploreRequest(
            goal="g", dataset="netflix", num_rows=100, episodes=5, seed=7,
            request_id="r-1",
        )
        restored = ExploreRequest.from_dict(json.loads(json.dumps(request.to_dict())))
        assert restored == request

    def test_engine_rejects_invalid_request_before_work(self, engine):
        with pytest.raises(RequestValidationError):
            engine.explore(ExploreRequest(goal="", dataset="netflix"))

    def test_ad_hoc_table_without_ldx_rejected(self, engine):
        table = DataTable({"x": [1, 2, 3]}, name="adhoc")
        with pytest.raises(RequestValidationError) as excinfo:
            engine.explore(ExploreRequest(goal="g", dataset="adhoc"), table=table)
        assert "ldx_text" in excinfo.value.fields()


class TestExploreResult:
    def test_json_round_trip_is_lossless(self, engine, netflix_mini, comparison_query):
        result = engine.explore(_request(comparison_query), table=netflix_mini)
        restored = ExploreResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert restored == result
        assert restored.to_dict() == result.to_dict()
        assert restored.artifacts is None

    def test_result_has_all_stage_statuses(self, engine, netflix_mini, comparison_query):
        result = engine.explore(_request(comparison_query), table=netflix_mini)
        assert [status.name for status in result.stages] == list(STAGE_ORDER)
        assert result.stage_status(STAGE_DERIVE) == STATUS_SKIPPED
        for name in (STAGE_GENERATE, STAGE_RENDER, STAGE_INSIGHTS):
            assert result.stage_status(name) == STATUS_COMPLETE
        assert result.stage(STAGE_GENERATE).seconds > 0.0

    def test_operations_rebuild_the_session(self, engine, netflix_mini, comparison_query):
        result = engine.explore(_request(comparison_query), table=netflix_mini)
        rebuilt = result.rebuild_session(netflix_mini)
        original = result.artifacts.session
        assert [n.signature() for n in rebuilt.query_nodes()] == [
            n.signature() for n in original.query_nodes()
        ]

    def test_unsupported_result_schema_rejected(self):
        with pytest.raises(RequestValidationError):
            ExploreResult.from_dict({"schema_version": "0.1", "request": {}})

    def test_unknown_result_field_rejected(self, engine, netflix_mini, comparison_query):
        payload = engine.explore(_request(comparison_query), table=netflix_mini).to_dict()
        payload["fully_complaint"] = True  # typo'd / renamed key
        with pytest.raises(RequestValidationError) as excinfo:
            ExploreResult.from_dict(payload)
        assert "fully_complaint" in excinfo.value.fields()

    def test_derivation_fallback_surfaced(self, engine, netflix_mini):
        request = ExploreRequest(
            goal="whatever goal", dataset="netflix", ldx_text="THIS IS NOT LDX ((("
        )
        result = engine.explore(request, table=netflix_mini)
        assert result.derivation_fallback
        assert result.ldx_text == PERMISSIVE_LDX
        assert any("permissive" in warning for warning in result.warnings)

    def test_no_fallback_flag_on_parseable_ldx(self, engine, netflix_mini, comparison_query):
        result = engine.explore(_request(comparison_query), table=netflix_mini)
        assert not result.derivation_fallback
        assert result.warnings == []


class TestBatchExecution:
    def test_shared_cache_reused_across_batch(self, netflix_mini, comparison_query):
        engine = LinxEngine(cdrl_config=CdrlConfig(episodes=12, seed=0))
        requests = [_request(comparison_query, seed=3) for _ in range(4)]
        results = [engine.explore(request, table=netflix_mini) for request in requests]
        for result in results[1:]:
            assert result.cache_stats["hits"] > 0
            assert result.cache_stats["hit_rate"] > 0.0

    def test_identical_seeds_give_identical_results(self, netflix_mini, comparison_query):
        engine = LinxEngine(cdrl_config=CdrlConfig(episodes=12, seed=0))
        request = _request(comparison_query, seed=3)
        first = engine.explore(request, table=netflix_mini)
        second = engine.explore(request, table=netflix_mini)
        assert first == second  # timings/cache stats excluded from equality

    def test_null_request_seed_uses_configured_generator_seed(
        self, netflix_mini, comparison_query
    ):
        config = CdrlConfig(episodes=12, seed=7)
        deferred = LinxEngine(cdrl_config=config).explore(
            _request(comparison_query, seed=None), table=netflix_mini
        )
        explicit = LinxEngine(cdrl_config=config).explore(
            _request(comparison_query, seed=7), table=netflix_mini
        )
        assert deferred.operations == explicit.operations
        assert deferred.utility_score == explicit.utility_score

    def test_cache_execution_flag_disables_shared_cache(
        self, netflix_mini, comparison_query
    ):
        engine = LinxEngine(
            cdrl_config=CdrlConfig(episodes=10, cache_execution=False)
        )
        result = engine.explore(_request(comparison_query), table=netflix_mini)
        # The agent must ignore the offered shared cache entirely: an
        # uncached ablation timed through the engine stays truly uncached.
        assert result.cache_stats["hits"] == 0
        assert result.cache_stats["misses"] == 0


class TestRegisteredDatasetBatch:
    """Batch execution against the registry (no table override)."""

    def test_explore_many_parallel_matches_sequential(self, comparison_query):
        ldx = comparison_query.render()
        requests = [
            ExploreRequest(
                goal="compare countries",
                dataset="netflix",
                num_rows=120,
                ldx_text=ldx,
                episodes=10,
                seed=seed,
                request_id=f"batch-{seed}",
            )
            for seed in (0, 1, 0, 1)
        ]
        sequential_engine = LinxEngine(cdrl_config=CdrlConfig(episodes=10))
        sequential = sequential_engine.explore_many(requests, max_workers=1)
        parallel_engine = LinxEngine(cdrl_config=CdrlConfig(episodes=10))
        parallel = parallel_engine.explore_many(requests, max_workers=4)
        assert sequential == parallel
        assert [r.request["request_id"] for r in parallel] == [
            "batch-0", "batch-1", "batch-0", "batch-1",
        ]

    def test_batch_matches_single_explore_under_identical_seeds(self, comparison_query):
        request = ExploreRequest(
            goal="compare countries",
            dataset="netflix",
            num_rows=120,
            ldx_text=comparison_query.render(),
            episodes=10,
            seed=0,
        )
        single = LinxEngine(cdrl_config=CdrlConfig(episodes=10)).explore(request)
        batch = LinxEngine(cdrl_config=CdrlConfig(episodes=10)).explore_many(
            [request] * 4, max_workers=2
        )
        assert all(result == single for result in batch)
        assert any(result.cache_stats["hits"] > 0 for result in batch[1:])

    def test_batch_reuses_cache_on_later_requests(self, comparison_query):
        engine = LinxEngine(cdrl_config=CdrlConfig(episodes=10))
        requests = [
            ExploreRequest(
                goal="compare countries",
                dataset="netflix",
                num_rows=120,
                ldx_text=comparison_query.render(),
                episodes=10,
                seed=0,
            )
            for _ in range(4)
        ]
        results = engine.explore_many(requests, max_workers=1)
        assert len(results) == 4
        for result in results[1:]:
            assert result.cache_stats["hits"] > 0

    def test_empty_batch(self):
        assert LinxEngine().explore_many([]) == []


class TestProgressEvents:
    def test_event_ordering_for_one_request(self, engine, netflix_mini, comparison_query):
        events = []
        engine.explore(
            _request(comparison_query, request_id="evt"),
            table=netflix_mini,
            observer=events.append,
        )
        assert all(event.request_id == "evt" for event in events)
        kinds = [(event.kind, event.stage) for event in events]
        assert kinds[0] == (EVENT_REQUEST_STARTED, "")
        assert kinds[1] == (EVENT_STAGE_SKIPPED, STAGE_DERIVE)
        assert kinds[2] == (EVENT_STAGE_STARTED, STAGE_GENERATE)
        assert kinds[-1] == (EVENT_REQUEST_FINISHED, "")
        # Episode ticks arrive strictly between generate start and finish.
        episode_positions = [
            index for index, event in enumerate(events) if event.kind == EVENT_EPISODE
        ]
        generate_finish = kinds.index((EVENT_STAGE_FINISHED, STAGE_GENERATE))
        assert episode_positions, "no episode ticks observed"
        assert all(2 < position < generate_finish for position in episode_positions)
        assert [event.payload["episode"] for event in events if event.kind == EVENT_EPISODE] == list(
            range(len(episode_positions))
        )
        # Render and insights each start then finish, in pipeline order.
        tail = kinds[generate_finish + 1 : -1]
        assert tail == [
            (EVENT_STAGE_STARTED, STAGE_RENDER),
            (EVENT_STAGE_FINISHED, STAGE_RENDER),
            (EVENT_STAGE_STARTED, STAGE_INSIGHTS),
            (EVENT_STAGE_FINISHED, STAGE_INSIGHTS),
        ]

    def test_batch_labels_unlabelled_requests(self, netflix_mini, comparison_query):
        engine = LinxEngine(cdrl_config=CdrlConfig(episodes=8))
        events = []
        requests = [
            ExploreRequest(
                goal="compare countries",
                dataset="netflix",
                num_rows=100,
                ldx_text=comparison_query.render(),
                episodes=8,
                seed=seed,
            )
            for seed in (0, 1)
        ]
        engine.explore_many(requests, max_workers=1, observer=events.append)
        labels = {event.request_id for event in events}
        assert labels == {"request-0", "request-1"}


class TestProcessEventStreaming:
    """Process workers stream full event sequences back to the parent."""

    def test_process_batch_streams_episode_events(self):
        engine = LinxEngine(cdrl_config=CdrlConfig(episodes=5))
        events = []
        requests = [
            ExploreRequest(
                goal="compare countries",
                dataset="netflix",
                num_rows=100,
                ldx_text="ROOT CHILDREN <A1>\nA1 LIKE [G,.*]",
                episodes=5,
                seed=seed,
                request_id=f"proc-{seed}",
            )
            for seed in (0, 1)
        ]
        results = engine.explore_many(
            requests, workers="process", max_workers=2, observer=events.append
        )
        assert len(results) == 2
        for request in requests:
            kinds = [
                event.kind for event in events
                if event.request_id == request.request_id
            ]
            # Full per-request ordering survives the process boundary,
            # episode ticks included (previously request-granularity only).
            assert kinds[0] == EVENT_REQUEST_STARTED
            assert kinds[-1] == EVENT_REQUEST_FINISHED
            assert EVENT_EPISODE in kinds
            assert kinds.index((EVENT_STAGE_STARTED)) < kinds.index(EVENT_EPISODE)

    def test_process_batch_without_observer_skips_queue(self):
        engine = LinxEngine(cdrl_config=CdrlConfig(episodes=5))
        request = ExploreRequest(
            goal="g", dataset="netflix", num_rows=100,
            ldx_text="ROOT CHILDREN <A1>\nA1 LIKE [G,.*]", episodes=5, seed=0,
        )
        [result] = engine.explore_many([request], workers="process", max_workers=1)
        assert result.operations


class StubGenerator:
    """Minimal SessionGenerator plug-in for stage-protocol tests."""

    name = "stub"

    def __init__(self):
        self.calls = 0

    def generate(self, table, ldx_text, *, episodes=None, seed=None, cache=None, on_episode=None):
        self.calls += 1
        if on_episode is not None:
            on_episode(0, 1.0, None)
        session = session_from_operations(
            table,
            [
                FilterOperation("country", "eq", "India"),
                GroupAggOperation("type", "count", "type"),
            ],
            cache=cache,
        )
        return SessionOutcome(session=session, utility_score=1.5, episodes_trained=1)


class TestPluggableStages:
    def test_custom_session_generator_is_used(self, netflix_mini, comparison_query):
        generator = StubGenerator()
        engine = LinxEngine(session_generator=generator)
        result = engine.explore(_request(comparison_query), table=netflix_mini)
        assert generator.calls == 1
        assert result.operations == [
            ["F", "country", "eq", "India"],
            ["G", "type", "count", "type"],
        ]
        assert result.utility_score == 1.5

    def test_failing_optional_stage_is_nonfatal(self, netflix_mini, comparison_query):
        class FailingExtractor:
            name = "boom"

            def extract(self, session):
                raise RuntimeError("kaput")

        engine = LinxEngine(
            session_generator=StubGenerator(), insight_extractor=FailingExtractor()
        )
        result = engine.explore(_request(comparison_query), table=netflix_mini)
        assert result.stage_status(STAGE_INSIGHTS) == STATUS_FAILED
        assert "kaput" in result.stage(STAGE_INSIGHTS).detail
        assert any("kaput" in warning for warning in result.warnings)
        assert result.notebook_markdown  # earlier stages unaffected

    def test_failing_required_stage_raises(self, netflix_mini, comparison_query):
        class FailingGenerator:
            name = "boom"

            def generate(self, table, ldx_text, *, episodes=None, seed=None, cache=None, on_episode=None):
                raise RuntimeError("no session for you")

        engine = LinxEngine(session_generator=FailingGenerator())
        with pytest.raises(StageFailedError) as excinfo:
            engine.explore(_request(comparison_query), table=netflix_mini)
        assert excinfo.value.stage == STAGE_GENERATE


class TestLegacyFacade:
    def test_linx_shares_engine_cache_across_explores(self, netflix_mini, comparison_query):
        linx = Linx(cdrl_config=CdrlConfig(episodes=10, seed=3))
        linx.explore(netflix_mini, "goal", ldx_text=comparison_query.render())
        hits_before = linx.engine.cache.stats.hits
        linx.explore(netflix_mini, "goal", ldx_text=comparison_query.render())
        assert linx.engine.cache.stats.hits > hits_before

    def test_linx_surfaces_derivation_fallback(self, netflix_mini):
        linx = Linx(cdrl_config=CdrlConfig(episodes=8, seed=3))
        output = linx.explore(netflix_mini, "whatever goal", ldx_text="NOT LDX (((")
        assert output.derivation_fallback
        assert output.warnings
        assert output.query is not None

    def test_linx_output_without_fallback(self, netflix_mini, comparison_query):
        linx = Linx(cdrl_config=CdrlConfig(episodes=10, seed=3))
        output = linx.explore(netflix_mini, "goal", ldx_text=comparison_query.render())
        assert not output.derivation_fallback
        assert output.warnings == []
