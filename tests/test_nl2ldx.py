"""Tests for PyLDX, the simulated LLMs and the NL→LDX derivation pipelines."""

from __future__ import annotations

import pytest

from repro.bench import generate_benchmark
from repro.ldx import parse_ldx, try_parse_ldx
from repro.llm import (
    DerivationTask,
    TASK_NL_TO_LDX,
    TASK_NL_TO_PANDAS,
    TASK_PANDAS_TO_LDX,
    chatgpt_client,
    gpt4_client,
    render_prompt,
)
from repro.metrics import lev2_score
from repro.nl2ldx import (
    ChainedPipeline,
    DirectPipeline,
    FewShotBank,
    PyLdxError,
    SCENARIOS,
    example_from_instance,
    ldx_to_pyldx,
    parse_pyldx,
    pyldx_text_to_ldx,
)

PAPER_PYLDX = """
df = pd.read_csv("epic_games.tsv", delimiter="\\t")
some_platform = df[df['platform'] == <VALUE>]
other_platforms = df[df['platform'] != <VALUE>]
some_platform_agg = some_platform.groupby(<COL>).agg(<AGG>)
other_platforms_agg = other_platforms.groupby(<COL>).agg(<AGG>)
"""


@pytest.fixture(scope="module")
def corpus():
    return generate_benchmark()


class TestPyLdx:
    def test_parse_paper_example(self):
        program = parse_pyldx(PAPER_PYLDX)
        operations = program.operations()
        assert len(operations) == 4
        assert operations[0].kind == "filter"
        assert operations[0].term.is_placeholder

    def test_pyldx_to_ldx_structure_and_continuity(self):
        ldx_text = pyldx_text_to_ldx(PAPER_PYLDX)
        query = parse_ldx(ldx_text)
        assert len(query.operational_specs()) == 4
        # Repeated <VALUE>/<COL>/<AGG> placeholders become shared continuity vars.
        assert set(query.continuity_variables()) == {"VALUE", "COL", "AGG"}

    def test_unsupported_lines_ignored(self):
        code = PAPER_PYLDX + "\ncomparison = pd.concat([a, b], axis=1)\n# a comment\n"
        assert parse_pyldx(code).operations()
        assert try_parse_ldx(pyldx_text_to_ldx(code)) is not None

    def test_code_without_operations_raises(self):
        with pytest.raises(PyLdxError):
            parse_pyldx("df = pd.read_csv('x.csv')")

    def test_ldx_to_pyldx_roundtrip_preserves_structure(self, comparison_query):
        code = ldx_to_pyldx(comparison_query, dataset_name="netflix")
        assert "read_csv" in code
        recovered = parse_ldx(pyldx_text_to_ldx(code))
        assert len(recovered.operational_specs()) == len(comparison_query.operational_specs())
        assert lev2_score(comparison_query, recovered) > 0.8

    def test_numeric_filter_terms_preserved(self):
        code = 'df = pd.read_csv("f.csv")\nsub = df[df[\'month\'] >= 6]\nagg = sub.groupby(<COL>).agg(<AGG>)'
        query = parse_ldx(pyldx_text_to_ldx(code))
        spec = query.operational_specs()[0]
        assert spec.operation.kind == "F"
        assert spec.operation.fields[1].value == "ge"


class TestPrompts:
    def test_nl2pandas_prompt_contains_sections(self, corpus):
        example = example_from_instance(corpus.instances[0])
        task = DerivationTask(
            kind=TASK_NL_TO_PANDAS,
            examples=(example,),
            goal="Find an atypical country",
            dataset="netflix",
            schema=("country", "type"),
            dataset_sample="country,type\nIndia,Movie",
        )
        prompt = render_prompt(task)
        assert "PyLDX" in prompt
        assert "Analysis Goal" in prompt
        assert "Find an atypical country" in prompt

    def test_pandas2ldx_prompt_contains_examples(self, corpus):
        example = example_from_instance(corpus.instances[0])
        task = DerivationTask(
            kind=TASK_PANDAS_TO_LDX,
            examples=(example,),
            pyldx_code="df = pd.read_csv('x.csv')",
        )
        prompt = render_prompt(task)
        assert "LDX is a specification language" in prompt
        assert example.ldx_text.splitlines()[0] in prompt

    def test_nl2ldx_prompt(self, corpus):
        example = example_from_instance(corpus.instances[0])
        task = DerivationTask(
            kind=TASK_NL_TO_LDX,
            examples=(example,),
            goal="Survey the price attribute",
            dataset="playstore",
            schema=("price",),
        )
        prompt = render_prompt(task)
        assert "Task: Survey the price attribute" in prompt

    def test_unknown_task_kind_raises(self):
        with pytest.raises(ValueError):
            render_prompt(DerivationTask(kind="bogus", examples=()))


class TestSimulatedLLM:
    def test_deterministic_outputs(self, corpus):
        bank = FewShotBank(corpus)
        client = gpt4_client()
        pipeline = ChainedPipeline(client, bank)
        test = corpus.instances[0]
        first = pipeline.derive(test, SCENARIOS[0]).ldx_text
        second = pipeline.derive(test, SCENARIOS[0]).ldx_text
        assert first == second

    def test_seen_scenario_produces_high_quality_ldx(self, corpus):
        bank = FewShotBank(corpus)
        pipeline = ChainedPipeline(gpt4_client(), bank)
        test = corpus.instances[0]
        result = pipeline.derive(test, SCENARIOS[0])
        assert result.parsed
        assert lev2_score(test.ldx_query(), result.query) > 0.6

    def test_chained_beats_direct_on_unseen_meta_goal(self, corpus):
        bank = FewShotBank(corpus)
        client = chatgpt_client()
        chained = ChainedPipeline(client, bank)
        direct = DirectPipeline(client, bank)
        unseen = SCENARIOS[1]  # seen dataset, unseen meta-goal
        sample = corpus.instances[::23][:8]
        chained_scores = []
        direct_scores = []
        for test in sample:
            chained_scores.append(lev2_score(test.ldx_query(), chained.derive(test, unseen).query))
            direct_scores.append(lev2_score(test.ldx_query(), direct.derive(test, unseen).query))
        assert sum(chained_scores) >= sum(direct_scores)

    def test_fewshot_bank_respects_scenarios(self, corpus):
        bank = FewShotBank(corpus)
        test = corpus.instances[0]
        seen = bank.select(test, SCENARIOS[0])
        assert all(example.dataset == test.dataset for example in seen)
        assert all(example.meta_goal_id == test.meta_goal_id for example in seen)
        unseen = bank.select(test, SCENARIOS[3])
        assert all(example.dataset != test.dataset for example in unseen)
        assert all(example.meta_goal_id != test.meta_goal_id for example in unseen)

    def test_fewshot_bank_never_leaks_test_instance(self, corpus):
        bank = FewShotBank(corpus)
        test = corpus.instances[5]
        for scenario in SCENARIOS:
            for example in bank.select(test, scenario):
                assert example.goal != test.goal
