"""Tests for the tiered (memory + sqlite) execution cache."""

from __future__ import annotations

import multiprocessing
import sqlite3

import numpy as np
import pytest

from repro.dataframe.column import Column
from repro.dataframe.table import DataTable
from repro.datasets import load_dataset
from repro.engine import ExploreRequest, LinxEngine
from repro.cdrl.agent import CdrlConfig
from repro.explore.cache import ExecutionCache
from repro.explore.diskcache import (
    DISK_SCHEMA_VERSION,
    DiskCacheTier,
    ThreadSafeTieredExecutionCache,
    TieredExecutionCache,
    deserialize_table,
    encode_key,
    serialize_table,
)
from repro.explore.executor import ExecutionError, QueryExecutor
from repro.explore.operations import FilterOperation, GroupAggOperation


@pytest.fixture()
def flights():
    return load_dataset("flights", num_rows=300)


@pytest.fixture()
def db_path(tmp_path):
    return tmp_path / "execution_cache.sqlite"


OPS = [
    FilterOperation("airline", "eq", "AA"),
    FilterOperation("distance", "gt", 500),
    GroupAggOperation("airline", "mean", "departure_delay"),
    GroupAggOperation("month", "count", "month"),
]


class TestSerialization:
    def test_typed_table_round_trips_with_fingerprint(self, flights):
        rebuilt = deserialize_table(serialize_table(flights))
        assert rebuilt == flights
        assert rebuilt.fingerprint() == flights.fingerprint()
        assert rebuilt.schema() == flights.schema()

    def test_object_backed_column_round_trips(self):
        mixed = Column.from_raw("mixed", [1, "two", None, 3.5, "four"])
        table = DataTable([mixed, Column("n", [1, 2, 3, 4, 5])], name="adhoc")
        rebuilt = deserialize_table(serialize_table(table))
        assert rebuilt == table
        assert rebuilt.fingerprint() == table.fingerprint()
        assert rebuilt.column("mixed").values == mixed.values

    def test_empty_result_round_trips(self, flights):
        empty = flights.filter_rows(np.zeros(len(flights), dtype=bool))
        rebuilt = deserialize_table(serialize_table(empty))
        assert rebuilt == empty
        assert len(rebuilt) == 0
        assert rebuilt.fingerprint() == empty.fingerprint()

    def test_key_encoding_is_stable_and_discriminating(self, flights):
        key_a = ExecutionCache.key_for(flights, OPS[0])
        key_b = ExecutionCache.key_for(flights, OPS[1])
        assert encode_key(key_a) == encode_key(key_a)
        assert encode_key(key_a) != encode_key(key_b)


class TestDiskRoundTrip:
    def test_second_process_reads_first_processs_results(self, flights, db_path):
        cache = TieredExecutionCache(db_path)
        executor = QueryExecutor(cache=cache)
        first = [executor.execute(flights, op) for op in OPS]
        cache.close()  # close() flushes

        warm = TieredExecutionCache(db_path)
        executor2 = QueryExecutor(cache=warm)
        second = [executor2.execute(flights, op) for op in OPS]
        for a, b in zip(first, second):
            assert a == b
            assert a.fingerprint() == b.fingerprint()
        summary = warm.describe()
        assert summary["disk_hits"] == len(OPS)
        assert summary["disk_misses"] == 0
        assert warm.stats.hits == len(OPS)
        warm.close()

    def test_write_behind_batches_and_flushes(self, flights, db_path):
        cache = TieredExecutionCache(db_path, write_batch_size=3)
        executor = QueryExecutor(cache=cache)
        executor.execute(flights, OPS[0])
        executor.execute(flights, OPS[1])
        assert cache.pending_writes == 2
        assert len(cache.disk) == 0
        executor.execute(flights, OPS[2])  # hits the batch size -> auto flush
        assert cache.pending_writes == 0
        assert len(cache.disk) == 3
        assert cache.disk.flushes == 1
        cache.close()

    def test_pending_entry_survives_memory_eviction(self, flights, db_path):
        cache = TieredExecutionCache(db_path, max_entries=1, write_batch_size=100)
        executor = QueryExecutor(cache=cache)
        first = executor.execute(flights, OPS[0])
        executor.execute(flights, OPS[1])  # evicts OPS[0] from the memory LRU
        assert cache.stats.evictions >= 1
        again = executor.execute(flights, OPS[0])  # served from the pending buffer
        assert again is first
        assert cache.disk.hits == 0
        cache.close()

    def test_errors_stay_memory_only(self, flights, db_path):
        cache = TieredExecutionCache(db_path)
        executor = QueryExecutor(cache=cache)
        bad = GroupAggOperation("airline", "mean", "airline")  # mean over strings
        with pytest.raises(ExecutionError):
            executor.execute(flights, bad)
        cache.flush()
        assert cache.negative_entries == 1
        assert len(cache.disk) == 0
        cache.close()


class TestVersionInvalidation:
    def test_version_mismatch_drops_entries(self, flights, db_path):
        cache = TieredExecutionCache(db_path)
        executor = QueryExecutor(cache=cache)
        for op in OPS:
            executor.execute(flights, op)
        cache.close()

        with sqlite3.connect(db_path) as conn:
            conn.execute(
                "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                (str(DISK_SCHEMA_VERSION + 1),),
            )

        reopened = DiskCacheTier(db_path)
        assert reopened.invalidated
        assert len(reopened) == 0
        with sqlite3.connect(db_path) as conn:
            version = conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()[0]
        assert version == str(DISK_SCHEMA_VERSION)
        reopened.close()

    def test_matching_version_keeps_entries(self, flights, db_path):
        cache = TieredExecutionCache(db_path)
        executor = QueryExecutor(cache=cache)
        for op in OPS:
            executor.execute(flights, op)
        cache.close()
        reopened = DiskCacheTier(db_path)
        assert not reopened.invalidated
        assert len(reopened) == len(OPS)
        reopened.close()


def _writer_process(db_path: str, which: int) -> None:
    table = load_dataset("flights", num_rows=300)
    cache = TieredExecutionCache(db_path, write_batch_size=2)
    executor = QueryExecutor(cache=cache)
    ops = OPS if which == 0 else [
        FilterOperation("airline", "eq", "DL"),
        FilterOperation("distance", "le", 800),
        GroupAggOperation("day_of_week", "mean", "arrival_delay"),
        GroupAggOperation("month", "count", "month"),  # overlaps with OPS
    ]
    for op in ops:
        executor.execute(table, op)
    cache.close()


class TestConcurrentWriters:
    def test_two_processes_share_one_store(self, flights, db_path):
        processes = [
            multiprocessing.Process(target=_writer_process, args=(str(db_path), which))
            for which in (0, 1)
        ]
        for proc in processes:
            proc.start()
        for proc in processes:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        tier = DiskCacheTier(db_path)
        # 4 + 4 operations with one overlap -> 7 distinct entries.
        assert len(tier) == 7
        for op in OPS:
            key = ExecutionCache.key_for(flights, op)
            assert tier.get(key) is not None
        tier.close()


class TestDescribe:
    def test_describe_covers_both_tiers(self, flights, db_path):
        cache = ThreadSafeTieredExecutionCache(db_path, write_batch_size=2)
        executor = QueryExecutor(cache=cache)
        for op in OPS:
            executor.execute(flights, op)
            executor.execute(flights, op)  # memory hit
        summary = cache.describe()
        assert summary["tiers"] == "memory+disk"
        assert summary["hits"] == len(OPS)
        assert summary["misses"] == len(OPS)
        assert summary["entries"] == len(OPS)
        assert summary["disk_writes"] >= 2
        assert summary["pending_writes"] == len(OPS) - summary["disk_writes"]
        assert summary["disk_schema_version"] == DISK_SCHEMA_VERSION
        cache.flush()
        assert cache.describe()["pending_writes"] == 0
        assert cache.describe()["disk_entries"] == len(OPS)
        cache.close()


class TestEngineIntegration:
    def test_engine_warm_starts_from_disk(self, db_path):
        request = ExploreRequest(
            goal="Explore delays",
            dataset="flights",
            num_rows=200,
            ldx_text="ROOT CHILDREN <A1>\nA1 LIKE [G,.*]",
            episodes=8,
            seed=3,
        )
        config = CdrlConfig(episodes=8)
        cold = LinxEngine(cdrl_config=config, disk_cache_path=db_path)
        first = cold.explore(request)
        assert cold.cache_stats()["disk_entries"] > 0

        warm = LinxEngine(cdrl_config=config, disk_cache_path=db_path)
        second = warm.explore(request)
        stats = warm.cache_stats()
        assert stats["disk_hits"] > 0
        assert first.operations == second.operations

    def test_process_pool_matches_thread_pool(self, db_path):
        requests = [
            ExploreRequest(
                goal="Explore delays",
                dataset="flights",
                num_rows=200,
                ldx_text="ROOT CHILDREN <A1>\nA1 LIKE [G,.*]",
                episodes=6,
                seed=seed,
                request_id=f"r{seed}",
            )
            for seed in (1, 2)
        ]
        config = CdrlConfig(episodes=6)
        engine = LinxEngine(cdrl_config=config, disk_cache_path=db_path)
        via_processes = engine.explore_many(requests, workers="process", max_workers=2)
        via_threads = LinxEngine(cdrl_config=config).explore_many(
            requests, workers="thread"
        )
        for p, t in zip(via_processes, via_threads):
            assert p.operations == t.operations
            assert p.fully_compliant == t.fully_compliant
        # Process results are lossless JSON round-trips without live artifacts.
        assert via_processes[0].artifacts is None
        assert via_processes[0].to_dict() == type(via_processes[0]).from_dict(
            via_processes[0].to_dict()
        ).to_dict()

    def test_process_pool_rejects_custom_stages(self):
        class NullRenderer:
            name = "null"

            def render(self, session, goal):
                raise NotImplementedError

        engine = LinxEngine(notebook_renderer=NullRenderer())
        with pytest.raises(ValueError):
            engine.explore_many(
                [ExploreRequest(goal="g", dataset="flights")], workers="process"
            )
