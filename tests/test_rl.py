"""Tests for the numpy RL library: network, policy, optimiser, trainer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataframe import DataTable
from repro.explore import ExplorationEnvironment
from repro.rl import (
    Adam,
    CategoricalPolicy,
    EpisodeBuffer,
    LinearSchedule,
    MultiHeadPolicyNetwork,
    PolicyGradientTrainer,
    SGD,
    TrainerConfig,
    softmax,
)
from repro.rl.schedules import ConstantSchedule, ExponentialDecaySchedule


@pytest.fixture
def network():
    return MultiHeadPolicyNetwork(
        observation_size=6, head_sizes={"a": 3, "b": 4}, hidden_sizes=(16,), seed=0
    )


class TestNetwork:
    def test_softmax_sums_to_one(self):
        probs = softmax(np.array([1.0, 2.0, 3.0]))
        assert probs.sum() == pytest.approx(1.0)
        assert np.all(probs > 0)

    def test_forward_shapes(self, network):
        probabilities, value = network.forward(np.zeros(6))
        assert probabilities["a"].shape == (3,)
        assert probabilities["b"].shape == (4,)
        assert isinstance(value, float)
        for probs in probabilities.values():
            assert probs.sum() == pytest.approx(1.0)

    def test_parameter_count_positive(self, network):
        assert network.num_parameters() > 0

    def test_backward_accumulates_gradients(self, network):
        network.zero_grad()
        network.forward(np.ones(6))
        network.backward({"a": np.array([0.1, -0.1, 0.0]), "b": np.zeros(4)}, 0.5)
        grads = [g for _, g in network.parameters()]
        assert any(np.any(g != 0) for g in grads)


class TestOptimisers:
    def test_sgd_moves_parameters(self):
        weight = np.ones((2, 2))
        grad = np.ones((2, 2))
        SGD(learning_rate=0.1).step([(weight, grad)])
        assert np.allclose(weight, 0.9)

    def test_adam_moves_parameters(self):
        weight = np.ones(3)
        grad = np.ones(3)
        Adam(learning_rate=0.1).step([(weight, grad)])
        assert np.all(weight < 1.0)

    def test_gradient_clipping(self):
        weight = np.zeros(2)
        grad = np.array([1000.0, 1000.0])
        SGD(learning_rate=1.0, clip_norm=1.0).step([(weight, grad)])
        assert np.linalg.norm(weight) <= 1.0 + 1e-6


class TestPolicy:
    def test_act_returns_valid_indices(self, network):
        policy = CategoricalPolicy(network, rng=np.random.default_rng(0))
        decision = policy.act(np.zeros(6))
        assert 0 <= decision.indices["a"] < 3
        assert 0 <= decision.indices["b"] < 4
        assert decision.log_prob <= 0
        assert decision.entropy > 0

    def test_greedy_act_is_argmax(self, network):
        policy = CategoricalPolicy(network, rng=np.random.default_rng(0))
        decision = policy.act(np.ones(6), greedy=True)
        for head, probs in decision.probabilities.items():
            assert decision.indices[head] == int(np.argmax(probs))

    def test_bias_provider_shifts_distribution(self, network):
        bias = np.array([10.0, 0.0, 0.0])
        policy = CategoricalPolicy(
            network,
            rng=np.random.default_rng(0),
            bias_provider=lambda head: bias if head == "a" else None,
        )
        distribution = policy.action_distribution(np.zeros(6))
        assert distribution["a"][0] > 0.9

    def test_gradient_accumulation_and_update_changes_distribution(self, network):
        policy = CategoricalPolicy(network, rng=np.random.default_rng(0))
        observation = np.ones(6)
        before = policy.action_distribution(observation)["a"].copy()
        # Strongly reinforce action 0 of head "a".
        optimizer = Adam(learning_rate=0.05)
        for _ in range(30):
            decision = policy.act(observation)
            advantage = 1.0 if decision.indices["a"] == 0 else -1.0
            policy.zero_grad()
            policy.accumulate_gradient(decision, advantage, value_target=0.0)
            optimizer.step(policy.parameters())
        after = policy.action_distribution(observation)["a"]
        assert after[0] > before[0]


class TestBufferAndSchedules:
    def test_returns_are_discounted(self):
        buffer = EpisodeBuffer()
        dummy = CategoricalPolicy(
            MultiHeadPolicyNetwork(2, {"a": 2}, (4,), seed=1), np.random.default_rng(1)
        ).act(np.zeros(2))
        buffer.add(dummy, 1.0, False)
        buffer.add(dummy, 1.0, True)
        returns = buffer.returns(discount=0.5)
        assert returns == [1.5, 1.0]
        assert buffer.total_reward() == 2.0

    def test_linear_schedule(self):
        schedule = LinearSchedule(1.0, 0.0, 10)
        assert schedule.value(0) == 1.0
        assert schedule.value(5) == pytest.approx(0.5)
        assert schedule.value(20) == 0.0

    def test_constant_schedule(self):
        assert ConstantSchedule(0.3).value(100) == 0.3

    def test_exponential_schedule(self):
        schedule = ExponentialDecaySchedule(1.0, decay=0.5, interval=10, minimum=0.1)
        assert schedule.value(0) == 1.0
        assert schedule.value(10) == 0.5
        assert schedule.value(1000) == 0.1


class TestTrainer:
    def test_training_runs_and_records_history(self, small_table):
        env = ExplorationEnvironment(small_table, episode_length=3)
        from repro.explore import ActionSpace
        from repro.cdrl.spec_network import build_basic_policy

        policy = build_basic_policy(env.observation_size(), env.action_space, (16,), seed=0)
        trainer = PolicyGradientTrainer(
            env, policy, TrainerConfig(episodes=10, batch_episodes=2, greedy_eval_every=5)
        )
        history = trainer.train()
        assert len(history.episode_returns) == 10
        assert history.total_steps() == 30
        assert len(history.greedy_returns) == 2

    def test_normalised_curve_in_unit_range(self, small_table):
        env = ExplorationEnvironment(small_table, episode_length=2)
        from repro.cdrl.spec_network import build_basic_policy

        policy = build_basic_policy(env.observation_size(), env.action_space, (8,), seed=0)
        trainer = PolicyGradientTrainer(env, policy, TrainerConfig(episodes=6, batch_episodes=3))
        history = trainer.train()
        curve = history.normalised_curve(window=3)
        assert all(0.0 <= value <= 1.0 for value in curve)

    def test_best_session_returns_session(self, small_table):
        env = ExplorationEnvironment(small_table, episode_length=2)
        from repro.cdrl.spec_network import build_basic_policy

        policy = build_basic_policy(env.observation_size(), env.action_space, (8,), seed=0)
        trainer = PolicyGradientTrainer(env, policy, TrainerConfig(episodes=4, batch_episodes=2))
        trainer.train()
        session, score = trainer.best_session(attempts=2)
        assert session.steps_taken == 2
        assert isinstance(score, float)
