"""Fault-injection matrix: every scripted failure recovers on its own.

One proving test per :class:`~repro.engine.faults.FaultPlan` kind —
``crash_after_claim``, ``crash_before_commit``, ``sqlite_busy``,
``hung_stage``, ``torn_cache_write`` — each asserting recovery without
manual intervention and without duplicate execution, plus the primitives
they are built from: the shared sqlite retry helper, deterministic fault
plans, corrupt-database quarantine, lease coordination, and cross-process
cancellation.
"""

from __future__ import annotations

import random
import sqlite3
import threading
import time

import pytest

from repro.cdrl import CdrlConfig
from repro.datasets import load_dataset
from repro.engine import (
    TICKET_CANCELLED,
    TICKET_DONE,
    TICKET_FAILED,
    ExploreRequest,
    LinxEngine,
    RequestCancelledError,
    RequestScheduler,
    RequestTimeoutError,
    ResultStore,
    SessionOutcome,
)
from repro.engine.faults import (
    KIND_CRASH,
    KIND_HANG,
    SITE_CACHE_WRITE,
    SITE_CHECKPOINT,
    SITE_STORE_COMMIT,
    SITE_STORE_WRITE,
    FaultPlan,
    FaultSpec,
    FileCancelEvent,
    InjectedFaultError,
    clear_plan,
    fault_point,
    install_plan,
    is_transient_sqlite_error,
    retry_sqlite,
)
from repro.explore import session_from_operations
from repro.explore.cache import ExecutionCache
from repro.explore.diskcache import DiskCacheTier, TieredExecutionCache
from repro.explore.operations import FilterOperation, GroupAggOperation

LDX = "ROOT CHILDREN <A1>\nA1 LIKE [G,.*]"


@pytest.fixture(autouse=True)
def _no_plan_leaks():
    """Every test starts and ends with no fault plan installed."""
    clear_plan()
    yield
    clear_plan()


def _request(**overrides) -> ExploreRequest:
    base = dict(goal="explore", dataset="netflix", num_rows=60, ldx_text=LDX)
    base.update(overrides)
    return ExploreRequest(**base)


class TickingGenerator:
    """Stub generator counting executions; ticks the cooperative checkpoint."""

    name = "ticking"

    def __init__(self, ticks: int = 3, tick_seconds: float = 0.01,
                 release: threading.Event | None = None):
        self.ticks = ticks
        self.tick_seconds = tick_seconds
        self.release = release
        self.calls = 0

    def generate(self, table, ldx_text, *, episodes=None, seed=None, cache=None,
                 on_episode=None):
        self.calls += 1
        episode = 0
        deadline = time.monotonic() + 30
        while True:
            if on_episode is not None:
                on_episode(episode, 0.0, None)
            episode += 1
            if self.release is not None:
                if self.release.is_set():
                    break
                if time.monotonic() > deadline:  # pragma: no cover - hang guard
                    raise RuntimeError("release event never set")
            elif episode >= self.ticks:
                break
            time.sleep(self.tick_seconds)
        session = session_from_operations(
            table,
            [
                FilterOperation("country", "eq", "India"),
                GroupAggOperation("type", "count", "type"),
            ],
            cache=cache,
        )
        return SessionOutcome(session=session, episodes_trained=episode)


def _scheduler(generator, store, **kwargs) -> RequestScheduler:
    engine = LinxEngine(session_generator=generator)
    return RequestScheduler(engine, store=store, max_workers=1, **kwargs)


# -- the shared retry helper ---------------------------------------------------------------

class TestRetrySqlite:
    def test_transient_errors_retry_then_succeed(self):
        sleeps: list[float] = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] <= 2:
                raise sqlite3.OperationalError("database is locked")
            return 42

        assert retry_sqlite(flaky, sleep=sleeps.append) == 42
        assert calls["n"] == 3
        assert len(sleeps) == 2
        # Bounded exponential backoff with jitter in [0.5, 1.0]x.
        assert all(0 < delay <= 0.25 for delay in sleeps)

    def test_non_retryable_error_raises_immediately(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise sqlite3.DatabaseError("file is not a database")

        with pytest.raises(sqlite3.DatabaseError):
            retry_sqlite(broken, sleep=lambda _: None)
        assert calls["n"] == 1

    def test_exhausted_attempts_reraise_and_report(self):
        observed: list[int] = []

        def wedged():
            raise sqlite3.OperationalError("database is locked")

        with pytest.raises(sqlite3.OperationalError):
            retry_sqlite(
                wedged, attempts=3, sleep=lambda _: None,
                on_retry=lambda attempt, exc, delay: observed.append(attempt),
            )
        assert observed == [0, 1]

    def test_delays_are_deterministic_with_seeded_rng(self):
        def capture_delays():
            sleeps: list[float] = []

            def wedged():
                raise sqlite3.OperationalError("database is busy")

            with pytest.raises(sqlite3.OperationalError):
                retry_sqlite(wedged, rng=random.Random(7), sleep=sleeps.append)
            return sleeps

        assert capture_delays() == capture_delays()

    def test_transient_classifier(self):
        assert is_transient_sqlite_error(sqlite3.OperationalError("database is locked"))
        assert is_transient_sqlite_error(sqlite3.OperationalError("database is busy"))
        assert not is_transient_sqlite_error(sqlite3.OperationalError("no such table: x"))
        assert not is_transient_sqlite_error(ValueError("locked"))


# -- fault plans ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_json_round_trip_is_lossless(self):
        plan = FaultPlan([
            FaultSpec(SITE_STORE_COMMIT, KIND_CRASH, after=2, times=3),
            FaultSpec(SITE_CHECKPOINT, KIND_HANG, seconds=0.5),
        ])
        restored = FaultPlan.from_json(plan.to_json())
        assert [spec.to_dict() for spec in restored.specs] == [
            spec.to_dict() for spec in plan.specs
        ]

    def test_fires_exactly_on_scheduled_arrivals(self):
        install_plan(FaultPlan([
            FaultSpec(SITE_STORE_COMMIT, KIND_CRASH, after=1, times=1)
        ]))
        fault_point(SITE_STORE_COMMIT)  # arrival 1: before the window
        with pytest.raises(InjectedFaultError):
            fault_point(SITE_STORE_COMMIT)  # arrival 2: fires
        fault_point(SITE_STORE_COMMIT)  # arrival 3: window exhausted
        fault_point(SITE_CHECKPOINT)  # other sites never fire

    def test_busy_kind_raises_a_retryable_error(self):
        install_plan(FaultPlan.sqlite_busy(times=1))
        with pytest.raises(sqlite3.OperationalError) as excinfo:
            fault_point(SITE_STORE_WRITE)
        assert is_transient_sqlite_error(excinfo.value)

    def test_hang_kind_sleeps_for_the_scripted_duration(self):
        install_plan(FaultPlan.hung_stage(seconds=0.15))
        before = time.monotonic()
        fault_point(SITE_CHECKPOINT)
        assert time.monotonic() - before >= 0.12

    def test_no_plan_is_a_no_op(self):
        assert fault_point(SITE_STORE_COMMIT) is None


# -- the five scripted failure modes -------------------------------------------------------

class TestCrashAfterClaim:
    def test_crash_after_claim_fails_ticket_then_recovers(self, tmp_path):
        """A worker dying right after its lease commits must not wedge the hash."""
        generator = TickingGenerator()
        store = ResultStore(tmp_path / "results.sqlite")
        try:
            with _scheduler(generator, store, lease_ttl=5.0) as scheduler:
                install_plan(FaultPlan.crash_after_claim())
                ticket = scheduler.submit(_request())
                snapshot = scheduler.wait(ticket.ticket_id, timeout=60)
                assert snapshot["state"] == TICKET_FAILED
                assert snapshot["error_kind"] == "InjectedFaultError"
                # The crash hit before the engine ran: nothing executed,
                # nothing stored.
                assert generator.calls == 0
                assert len(store) == 0
                # The worker-hardening path recorded the traceback.
                events, _, done = scheduler.events_since(ticket.ticket_id)
                assert done
                assert "InjectedFaultError" in events[-1].payload["traceback"]
                # Recovery without intervention: once the fault clears, the
                # same hash re-claims (takeover of this replica's own stale
                # lease) and executes exactly once.
                clear_plan()
                retry = scheduler.submit(_request())
                assert retry.ticket_id != ticket.ticket_id
                assert scheduler.wait(retry.ticket_id, timeout=60)["state"] == TICKET_DONE
                assert generator.calls == 1
                assert len(store) == 1
        finally:
            store.close()

    def test_expired_crash_lease_is_taken_over_by_a_sibling(self, tmp_path):
        """A ghost lease (holder crashed, never released) expires and is re-claimed."""
        generator = TickingGenerator()
        store = ResultStore(tmp_path / "results.sqlite")
        try:
            with _scheduler(generator, store, lease_ttl=5.0) as scheduler:
                # Simulate the crashed sibling: a short-TTL lease on the
                # exact (namespace, hash) the submit below needs.
                request = _request()
                store.claim(
                    scheduler._store_namespace, request.canonical_hash(),
                    "ghost-replica", 0.3,
                )
                ticket = scheduler.submit(request)
                snapshot = scheduler.wait(ticket.ticket_id, timeout=60)
                assert snapshot["state"] == TICKET_DONE
                assert generator.calls == 1
                # The worker observed the foreign lease, waited, took over.
                assert scheduler.describe()["leases"]["waits"] >= 1
                assert store.describe()["leases"]["takeovers"] >= 1
        finally:
            store.close()


class TestCrashBeforeCommit:
    def test_crash_before_commit_reexecutes_on_resubmit(self, tmp_path):
        """Dying between execution and the store commit loses the work, not the hash."""
        generator = TickingGenerator()
        store = ResultStore(tmp_path / "results.sqlite")
        try:
            with _scheduler(generator, store) as scheduler:
                install_plan(FaultPlan.crash_before_commit())
                ticket = scheduler.submit(_request())
                snapshot = scheduler.wait(ticket.ticket_id, timeout=60)
                assert snapshot["state"] == TICKET_FAILED
                assert snapshot["error_kind"] == "InjectedFaultError"
                assert "store write failed" in snapshot["error"]
                # The engine DID run, but the commit was lost: no row.
                assert generator.calls == 1
                assert len(store) == 0
                # The lease was released on the failure path, so recovery
                # needs no TTL wait.
                assert store.lease(
                    scheduler._store_namespace, ticket.request_hash
                ) is None
                clear_plan()
                retry = scheduler.submit(_request())
                assert scheduler.wait(retry.ticket_id, timeout=60)["state"] == TICKET_DONE
                assert generator.calls == 2
                assert len(store) == 1
        finally:
            store.close()


class TestSqliteBusy:
    def test_store_claim_rides_out_a_busy_storm(self, tmp_path):
        """Three consecutive injected lock errors are absorbed by the backoff."""
        store = ResultStore(tmp_path / "results.sqlite")
        try:
            install_plan(FaultPlan.sqlite_busy(times=3))
            assert store.claim("ns", "hash-1", "replica-a", 30.0)
            assert store.write_retries == 3
            assert store.lease("ns", "hash-1")["replica_id"] == "replica-a"
        finally:
            store.close()

    def test_store_put_rides_out_a_busy_storm(self, tmp_path):
        engine = LinxEngine(session_generator=TickingGenerator())
        result = engine.explore(_request())
        store = ResultStore(tmp_path / "results.sqlite")
        try:
            install_plan(FaultPlan.sqlite_busy(times=2))
            store.put("ns", "hash-1", result)
            assert store.write_retries == 2
            assert store.get_payload("ns", "hash-1") == result.to_dict()
        finally:
            store.close()

    def test_sqlite_busy_exhaustion_degrades_cache_to_memory(self, tmp_path):
        """A disk tier that stays locked costs persistence, never the request."""
        flights = load_dataset("flights", num_rows=120)
        operation = FilterOperation("airline", "eq", "AA")
        result = flights.filter_rows(
            [value == "AA" for value in flights.column("airline").values]
        )
        cache = TieredExecutionCache(tmp_path / "cache.sqlite")
        try:
            cache.put(flights, operation, result)
            # Storm longer than every retry attempt: the flush gives up.
            install_plan(FaultPlan.sqlite_busy(site=SITE_CACHE_WRITE, times=100))
            assert cache.flush() == 0
            assert cache.write_failures == 1
            assert cache.pending_writes == 0  # dropped, not retried forever
            assert len(cache.disk) == 0
            # The memory tier still serves the result.
            assert cache.get(flights, operation) == result
            # And once the storm passes, later writes persist again.
            clear_plan()
            cache.put(flights, operation, result)
            assert cache.flush() == 1
            assert len(cache.disk) == 1
        finally:
            cache.close()


class TestHungStage:
    def test_hung_stage_is_cancelled_by_the_deadline(self, tmp_path):
        """A hang at a checkpoint is observed by the deadline check right after it."""
        generator = TickingGenerator(ticks=10_000, tick_seconds=0.01)
        store = ResultStore(tmp_path / "results.sqlite")
        try:
            with _scheduler(generator, store) as scheduler:
                install_plan(FaultPlan.hung_stage(seconds=0.3))
                ticket = scheduler.submit(_request(), timeout=0.1)
                snapshot = scheduler.wait(ticket.ticket_id, timeout=60)
                assert snapshot["state"] == TICKET_CANCELLED
                assert snapshot["error_kind"] == "RequestTimeoutError"
                assert len(store) == 0
        finally:
            store.close()

    def test_hung_stage_times_out_at_engine_level(self):
        engine = LinxEngine(
            session_generator=TickingGenerator(ticks=10_000, tick_seconds=0.01)
        )
        install_plan(FaultPlan.hung_stage(seconds=0.3))
        with pytest.raises(RequestTimeoutError):
            engine.explore(_request(), timeout=0.1)


class TestTornCacheWrite:
    def test_torn_cache_write_repairs_as_a_miss(self, tmp_path):
        """A half-written payload reads as a miss, is removed, and re-puts cleanly."""
        flights = load_dataset("flights", num_rows=120)
        key = ExecutionCache.key_for(flights, FilterOperation("airline", "eq", "AA"))
        tier = DiskCacheTier(tmp_path / "cache.sqlite")
        try:
            install_plan(FaultPlan.torn_cache_write())
            tier.put(key, flights)
            assert len(tier) == 1  # the torn row IS on disk...
            clear_plan()
            assert tier.get(key) is None  # ...but reads repair it as a miss
            assert len(tier) == 0  # and the corrupt row is gone
            tier.put(key, flights)  # recovery: a clean re-put round-trips
            assert tier.get(key) == flights
        finally:
            tier.close()


# -- corrupt-database quarantine -----------------------------------------------------------

class TestQuarantine:
    def test_corrupt_store_is_quarantined_and_rebuilt(self, tmp_path):
        path = tmp_path / "results.sqlite"
        path.write_bytes(b"definitely not a sqlite database" * 64)
        store = ResultStore(path)
        try:
            assert store.quarantined_path is not None
            assert "corrupt" in store.quarantined_path
            # The corrupt bytes were preserved for post-mortems...
            assert (tmp_path / store.quarantined_path.rsplit("/", 1)[-1]).exists()
            # ...and the rebuilt store works immediately.
            assert store.claim("ns", "h", "replica", 30.0)
            assert len(store) == 0
            assert store.describe()["quarantined_path"] == store.quarantined_path
        finally:
            store.close()

    def test_corrupt_cache_tier_is_quarantined_and_rebuilt(self, tmp_path):
        flights = load_dataset("flights", num_rows=60)
        key = ExecutionCache.key_for(flights, FilterOperation("airline", "eq", "AA"))
        path = tmp_path / "cache.sqlite"
        path.write_bytes(b"\x00" * 4096)
        tier = DiskCacheTier(path)
        try:
            assert tier.quarantined_path is not None
            tier.put(key, flights)
            assert tier.get(key) == flights
        finally:
            tier.close()

    def test_healthy_files_are_not_quarantined(self, tmp_path):
        path = tmp_path / "results.sqlite"
        first = ResultStore(path)
        first.claim("ns", "h", "replica", 30.0)
        first.close()
        second = ResultStore(path)
        try:
            assert second.quarantined_path is None
        finally:
            second.close()


# -- exactly-once across replicas ----------------------------------------------------------

class TestExactlyOnceAcrossSchedulers:
    def test_two_schedulers_one_store_execute_once(self, tmp_path):
        """The second replica waits on the first's lease and serves its result."""
        release = threading.Event()
        generator_a = TickingGenerator(release=release)
        generator_b = TickingGenerator(release=release)
        store_a = ResultStore(tmp_path / "results.sqlite")
        store_b = ResultStore(tmp_path / "results.sqlite")
        request = _request()
        try:
            # Generous TTL: lease *expiry* is deliberately out of reach here
            # (takeover has its own test); a slow CI box must not let a's
            # lease lapse mid-execution and hand b a duplicate run.
            with _scheduler(generator_a, store_a, replica_id="a", lease_ttl=60.0) as a, \
                 _scheduler(generator_b, store_b, replica_id="b", lease_ttl=60.0) as b:
                namespace = a._store_namespace
                assert namespace == b._store_namespace  # identical configs
                ticket_a = a.submit(request)
                # Wait for replica a to claim the execution lease.
                deadline = time.monotonic() + 30
                while store_b.lease(namespace, request.canonical_hash()) is None:
                    assert time.monotonic() < deadline, "replica a never claimed"
                    time.sleep(0.01)
                ticket_b = b.submit(request)
                release.set()
                assert a.wait(ticket_a.ticket_id, timeout=60)["state"] == TICKET_DONE
                snapshot_b = b.wait(ticket_b.ticket_id, timeout=60)
                assert snapshot_b["state"] == TICKET_DONE
                # b never executed: it waited out a's lease and served the
                # stored result.
                assert snapshot_b["served_from_store"] is True
                assert generator_a.calls == 1
                assert generator_b.calls == 0
                assert b.describe()["leases"]["waits"] >= 1
                assert len(store_a) == 1
        finally:
            release.set()
            store_a.close()
            store_b.close()


# -- cross-process cancellation ------------------------------------------------------------

class TestProcessCancellation:
    def test_file_cancel_event_latches_across_instances(self, tmp_path):
        path = tmp_path / "batch.cancel"
        controller = FileCancelEvent(path)
        worker_side = FileCancelEvent(path, poll_interval=0.0)
        assert not worker_side.is_set()
        controller.set()
        assert worker_side.is_set()
        assert worker_side.wait(timeout=1.0)
        controller.clear()
        assert not path.exists()

    def test_explore_many_cancel_event_reaches_process_workers(self, tmp_path):
        """The sentinel bridge cancels pool workers at their next checkpoint."""
        engine = LinxEngine(
            cdrl_config=CdrlConfig(episodes=5_000),
            disk_cache_path=tmp_path / "cache.sqlite",
        )
        cancel = threading.Event()
        timer = threading.Timer(1.0, cancel.set)
        timer.start()
        try:
            with pytest.raises(RequestCancelledError):
                engine.explore_many(
                    [_request(num_rows=100, episodes=5_000, seed=0)],
                    workers="process",
                    max_workers=1,
                    cancel_event=cancel,
                )
        finally:
            timer.cancel()
            cancel.set()
            engine.close()

    def test_scheduler_cancel_reaches_process_worker(self, tmp_path):
        """cancel() on a running process-mode ticket terminates at a checkpoint,
        writes no store row, and surfaces the cancelled stage status."""
        engine = LinxEngine(cdrl_config=CdrlConfig(episodes=5_000))
        store = ResultStore(tmp_path / "results.sqlite")
        try:
            with RequestScheduler(
                engine, store=store, workers="process", max_workers=1,
                cancel_dir=tmp_path / "cancel",
            ) as scheduler:
                ticket = scheduler.submit(
                    _request(num_rows=100, episodes=5_000, seed=0)
                )
                # Wait until the worker has streamed its first episode event:
                # the request is provably mid-stage in the other process.
                deadline = time.monotonic() + 120
                while not scheduler.status(ticket.ticket_id)["events_seen"]:
                    assert time.monotonic() < deadline, "worker never started"
                    time.sleep(0.05)
                assert scheduler.cancel(ticket.ticket_id) is True
                snapshot = scheduler.wait(ticket.ticket_id, timeout=120)
                assert snapshot["state"] == TICKET_CANCELLED
                assert snapshot["error_kind"] == "RequestCancelledError"
                assert len(store) == 0
                # The generate stage was marked cancelled inside the worker
                # process (events may trail the terminal state briefly).
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    events, _, _ = scheduler.events_since(ticket.ticket_id)
                    if any(
                        event.payload.get("status") == "cancelled"
                        for event in events
                    ):
                        break
                    time.sleep(0.05)
                else:  # pragma: no cover - assertion context on timeout
                    raise AssertionError("no cancelled stage status event arrived")
        finally:
            store.close()
