"""Tests for batched lock-step rollouts (repro.explore.rollouts).

The load-bearing property is *bit-identity*: a K-environment batched rollout
must reproduce K one-at-a-time rollouts exactly — same actions, same
rewards, same observations, same log-probabilities — at equal seeds.  That
holds because per-episode RNG streams derive from ``(seed, episode_index)``
and the policy's batched kernels are row-bit-identical to the
single-observation ones.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.atena import AtenaAgent, AtenaConfig
from repro.cdrl.agent import CdrlConfig, LinxCdrlAgent
from repro.cdrl.spec_network import build_basic_policy
from repro.datasets import load_dataset
from repro.explore.cache import ExecutionCache
from repro.explore.environment import ExplorationEnvironment
from repro.explore.action_space import ActionSpace, choice_from_index_map
from repro.explore.rollouts import (
    VectorEnvironment,
    collect_rollouts,
    collect_sequential_rollouts,
    env_rng,
)
from repro.rl.trainer import PolicyGradientTrainer, TrainerConfig

LDX = "ROOT CHILDREN <A1,A2>\nA1 LIKE [F,.*]\nA2 LIKE [G,.*]"


@pytest.fixture(scope="module")
def flights():
    return load_dataset("flights", num_rows=300)


@pytest.fixture(scope="module")
def space(flights):
    return ActionSpace(flights)


def _assert_rollouts_identical(batched, sequential):
    assert len(batched.buffers) == len(sequential.buffers)
    for b_buffer, s_buffer in zip(batched.buffers, sequential.buffers):
        assert len(b_buffer) == len(s_buffer)
        for b, s in zip(b_buffer.transitions, s_buffer.transitions):
            assert b.decision.indices == s.decision.indices
            assert b.reward == s.reward
            assert b.done == s.done
            assert b.decision.value == s.decision.value
            assert b.decision.log_prob == s.decision.log_prob
            assert b.decision.entropy == s.decision.entropy
            assert np.array_equal(b.decision.observation, s.decision.observation)
    for b_session, s_session in zip(batched.sessions, sequential.sessions):
        assert [op.signature() for op in b_session.operations] == [
            op.signature() for op in s_session.operations
        ]


class TestEnvRng:
    def test_streams_are_deterministic(self):
        assert env_rng(7, 3).random() == env_rng(7, 3).random()

    def test_streams_differ_across_episodes_and_seeds(self):
        draws = {env_rng(seed, k).random() for seed in (0, 1) for k in range(4)}
        assert len(draws) == 8

    def test_negative_seed_is_usable(self):
        assert env_rng(-5, 0).random() == env_rng(-5, 0).random()


class TestVectorEnvironment:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            VectorEnvironment([])

    def test_rejects_mismatched_episode_lengths(self, flights, space):
        envs = [
            ExplorationEnvironment(flights, episode_length=4, action_space=space),
            ExplorationEnvironment(flights, episode_length=6, action_space=space),
        ]
        with pytest.raises(ValueError):
            VectorEnvironment(envs)

    def test_create_shares_one_cache_and_memo(self, flights):
        vec = VectorEnvironment.create(flights, 4, episode_length=5)
        caches = {id(env.cache) for env in vec.environments}
        assert len(caches) == 1
        memos = {id(env._view_feature_memo) for env in vec.environments}
        assert len(memos) == 1

    def test_reset_and_step_shapes(self, flights, space):
        vec = VectorEnvironment.create(flights, 3, episode_length=5, action_space=space)
        observations = vec.reset()
        assert observations.shape == (3, vec.observation_size())
        assert observations.dtype == np.float64
        masks = vec.head_masks()
        for name, stacked in masks.items():
            assert stacked.shape[0] == 3, name
        policy = build_basic_policy(
            observation_size=vec.observation_size(), action_space=space, seed=0
        )
        decisions = policy.act_batch(observations, [{}, {}, {}])
        outcome = vec.step(
            [choice_from_index_map(d.indices) for d in decisions]
        )
        assert outcome.observations.shape == (3, vec.observation_size())
        assert outcome.rewards.shape == (3,)
        assert outcome.dones.shape == (3,)
        assert len(outcome.infos) == 3


class TestBitIdentity:
    def test_basic_policy_batched_equals_sequential(self, flights, space):
        num = 6
        vec = VectorEnvironment.create(flights, num, episode_length=6, action_space=space)
        policy = build_basic_policy(
            observation_size=vec.observation_size(), action_space=space, seed=3
        )
        policy.mask_provider = vec.environments[0].head_mask
        batched = collect_rollouts(vec, policy, seed=42)

        # Fresh environments with *private* caches: caching must not change
        # results, only speed.
        envs = [
            ExplorationEnvironment(flights, episode_length=6, action_space=space)
            for _ in range(num)
        ]
        policy_seq = build_basic_policy(
            observation_size=vec.observation_size(), action_space=space, seed=3
        )
        policy_seq.mask_provider = envs[0].head_mask
        sequential = collect_sequential_rollouts(envs, policy_seq, seed=42)
        _assert_rollouts_identical(batched, sequential)

    def test_spec_aware_policy_batched_equals_sequential(self, flights):
        config = CdrlConfig(episodes=8, num_envs=4, seed=5)
        agent_a = LinxCdrlAgent(flights, LDX, config=config)
        agent_b = LinxCdrlAgent(flights, LDX, config=config)
        batched = collect_rollouts(agent_a.vector_environment, agent_a.policy, seed=9)
        sequential = collect_sequential_rollouts(
            agent_b.vector_environment.environments,
            agent_b.policy,
            seed=9,
            decision_to_choice=agent_b.policy.indices_to_choice,
        )
        # The batched collector must be given the same decoder.
        batched_decoded = collect_rollouts(
            agent_a.vector_environment,
            agent_a.policy,
            seed=9,
            decision_to_choice=agent_a.policy.indices_to_choice,
        )
        _assert_rollouts_identical(batched_decoded, sequential)
        assert batched is not None  # first collection also completed

    def test_partial_wave_matches_prefix(self, flights, space):
        vec = VectorEnvironment.create(flights, 5, episode_length=5, action_space=space)
        policy = build_basic_policy(
            observation_size=vec.observation_size(), action_space=space, seed=1
        )
        policy.mask_provider = vec.environments[0].head_mask
        full = collect_rollouts(vec, policy, seed=11)
        partial = collect_rollouts(vec, policy, seed=11, num_episodes=2)
        for full_buffer, part_buffer in zip(full.buffers[:2], partial.buffers):
            assert [t.decision.indices for t in full_buffer.transitions] == [
                t.decision.indices for t in part_buffer.transitions
            ]

    def test_episode_base_shifts_streams(self, flights, space):
        vec = VectorEnvironment.create(flights, 2, episode_length=5, action_space=space)
        policy = build_basic_policy(
            observation_size=vec.observation_size(), action_space=space, seed=1
        )
        first = collect_rollouts(vec, policy, seed=0, episode_base=0)
        second = collect_rollouts(vec, policy, seed=0, episode_base=2)
        assert [t.decision.indices for t in first.buffers[0].transitions] != [
            t.decision.indices for t in second.buffers[0].transitions
        ]


class TestCustomMaskProvider:
    def test_custom_provider_is_honored_in_batched_collection(self, flights, space):
        vec = VectorEnvironment.create(flights, 3, episode_length=5, action_space=space)
        policy = build_basic_policy(
            observation_size=vec.observation_size(), action_space=space, seed=0
        )
        forbid_filter = np.array([True, False, True])  # mask out action_type "filter"

        def provider(name):
            return forbid_filter if name == "action_type" else None

        policy.mask_provider = provider
        batch = collect_rollouts(vec, policy, seed=0)
        chosen = {
            t.decision.indices["action_type"]
            for buffer in batch.buffers
            for t in buffer.transitions
        }
        assert 1 not in chosen
        # The provider survives collection (it is not an environment hook).
        assert policy.mask_provider is provider


class TestSharedCache:
    def test_cross_environment_reuse(self, flights, space):
        shared = ExecutionCache()
        vec = VectorEnvironment.create(
            flights, 8, episode_length=6, action_space=space, cache=shared
        )
        policy = build_basic_policy(
            observation_size=vec.observation_size(), action_space=space, seed=0
        )
        policy.mask_provider = vec.environments[0].head_mask
        collect_rollouts(vec, policy, seed=0)
        collect_rollouts(vec, policy, seed=1)
        stats = shared.stats
        assert stats.lookups > 0
        # Across 16 episodes over one cache some (view, operation) pairs repeat.
        assert stats.hits > 0


class TestTrainerIntegration:
    def test_num_envs_requires_vector_environment(self, flights, space):
        environment = ExplorationEnvironment(flights, episode_length=5, action_space=space)
        policy = build_basic_policy(
            observation_size=environment.observation_size(), action_space=space, seed=0
        )
        with pytest.raises(ValueError):
            PolicyGradientTrainer(
                environment, policy, TrainerConfig(episodes=4, num_envs=4)
            )

    def test_num_envs_must_fit_the_vector_environment(self, flights, space):
        vec = VectorEnvironment.create(flights, 2, episode_length=5, action_space=space)
        policy = build_basic_policy(
            observation_size=vec.observation_size(), action_space=space, seed=0
        )
        with pytest.raises(ValueError):
            PolicyGradientTrainer(
                vec.environments[0],
                policy,
                TrainerConfig(episodes=4, num_envs=4),
                vector_environment=vec,
            )

    def test_trainer_level_num_envs_is_honored(self, flights):
        config = CdrlConfig(episodes=8, seed=0, trainer=TrainerConfig(num_envs=4))
        agent = LinxCdrlAgent(flights, LDX, config=config)
        assert agent.num_envs == 4
        assert agent.vector_environment is not None
        assert agent.vector_environment.num_envs == 4

    def test_conflicting_num_envs_settings_are_rejected(self, flights):
        config = CdrlConfig(
            episodes=8, num_envs=2, trainer=TrainerConfig(num_envs=4)
        )
        with pytest.raises(ValueError):
            LinxCdrlAgent(flights, LDX, config=config)

    def test_batched_training_is_deterministic(self, flights):
        config = CdrlConfig(episodes=12, num_envs=4, seed=2)
        first = LinxCdrlAgent(flights, LDX, config=config).run()
        second = LinxCdrlAgent(flights, LDX, config=config).run()
        assert first.history.episode_returns == second.history.episode_returns
        assert [op.signature() for op in first.session.operations] == [
            op.signature() for op in second.session.operations
        ]

    def test_batched_training_counts_episodes_exactly(self, flights):
        # 10 episodes in waves of 4 -> 4 + 4 + 2 (partial final wave).
        config = CdrlConfig(episodes=10, num_envs=4, seed=0)
        agent = LinxCdrlAgent(flights, LDX, config=config)
        result = agent.run()
        assert result.episodes_trained == 10
        assert len(agent.trainer.history.episode_steps) == 10

    def test_atena_num_envs(self, flights):
        config = AtenaConfig(episodes=8, num_envs=4, seed=1)
        agent = AtenaAgent(flights, config=config)
        result = agent.run()
        assert len(result.history.episode_returns) == 8
        assert agent.vector_environment is not None
        caches = {id(env.cache) for env in agent.vector_environment.environments}
        assert caches == {id(agent.environment.cache)}
