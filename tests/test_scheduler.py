"""Tests for the request scheduler (lifecycle, dedup, back-pressure, cancel)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.cdrl import CdrlConfig
from repro.engine import (
    EVENT_EPISODE,
    EVENT_REQUEST_CANCELLED,
    EVENT_REQUEST_FAILED,
    EVENT_REQUEST_FINISHED,
    EVENT_REQUEST_STARTED,
    TICKET_CANCELLED,
    TICKET_DONE,
    TICKET_FAILED,
    ExploreRequest,
    LinxEngine,
    RequestCancelledError,
    RequestScheduler,
    RequestTimeoutError,
    RequestValidationError,
    ResultStore,
    SchedulerFullError,
    SessionOutcome,
)
from repro.explore import session_from_operations
from repro.explore.operations import FilterOperation, GroupAggOperation

LDX = "ROOT CHILDREN <A1>\nA1 LIKE [G,.*]"


def _request(**overrides) -> ExploreRequest:
    base = dict(goal="explore", dataset="netflix", num_rows=60, ldx_text=LDX)
    base.update(overrides)
    return ExploreRequest(**base)


class TickingGenerator:
    """A stub generator that ticks episodes until released or interrupted.

    ``on_episode`` is the engine's cooperative checkpoint, so raising a
    cancellation/timeout from inside it (the engine's guard does) aborts
    generation exactly as it would abort real CDRL training.
    """

    name = "ticking"

    def __init__(self, ticks: int = 3, tick_seconds: float = 0.01,
                 release: threading.Event | None = None):
        self.ticks = ticks
        self.tick_seconds = tick_seconds
        self.release = release
        self.calls = 0

    def generate(self, table, ldx_text, *, episodes=None, seed=None, cache=None,
                 on_episode=None):
        self.calls += 1
        episode = 0
        deadline = time.monotonic() + 30
        while True:
            if on_episode is not None:
                on_episode(episode, 0.0, None)
            episode += 1
            if self.release is not None:
                if self.release.is_set():
                    break
                if time.monotonic() > deadline:  # pragma: no cover - test hang guard
                    raise RuntimeError("release event never set")
            elif episode >= self.ticks:
                break
            time.sleep(self.tick_seconds)
        session = session_from_operations(
            table,
            [
                FilterOperation("country", "eq", "India"),
                GroupAggOperation("type", "count", "type"),
            ],
            cache=cache,
        )
        return SessionOutcome(session=session, episodes_trained=episode)


def _scheduler(generator=None, **kwargs) -> RequestScheduler:
    engine = LinxEngine(session_generator=generator or TickingGenerator())
    return RequestScheduler(engine, **kwargs)


class TestLifecycle:
    def test_ticket_runs_to_done_with_ordered_events(self):
        with _scheduler(max_workers=1) as scheduler:
            ticket = scheduler.submit(_request(request_id="life"))
            snapshot = scheduler.wait(ticket.ticket_id, timeout=60)
            assert snapshot["state"] == TICKET_DONE
            assert snapshot["started_at"] >= snapshot["submitted_at"]
            assert snapshot["finished_at"] >= snapshot["started_at"]
            events, cursor, done = scheduler.events_since(ticket.ticket_id)
            assert done
            kinds = [event.kind for event in events]
            assert kinds[0] == EVENT_REQUEST_STARTED
            assert kinds[-1] == EVENT_REQUEST_FINISHED
            assert EVENT_EPISODE in kinds
            assert all(event.request_id == "life" for event in events)
            payload = scheduler.result_payload(ticket.ticket_id)
            assert payload["operations"]

    def test_invalid_request_rejected_without_ticket(self):
        with _scheduler(max_workers=1) as scheduler:
            with pytest.raises(RequestValidationError):
                scheduler.submit(_request(goal="  "))
            assert scheduler.describe()["tickets"] == 0

    def test_failed_request_becomes_failed_ticket(self):
        class Exploding:
            name = "boom"

            def generate(self, table, ldx_text, **kwargs):
                raise RuntimeError("kaput")

        with _scheduler(Exploding(), max_workers=1) as scheduler:
            ticket = scheduler.submit(_request())
            snapshot = scheduler.wait(ticket.ticket_id, timeout=60)
            assert snapshot["state"] == TICKET_FAILED
            assert "kaput" in snapshot["error"]
            events, _, done = scheduler.events_since(ticket.ticket_id)
            assert done
            assert events[-1].kind == EVENT_REQUEST_FAILED
            assert scheduler.result_payload(ticket.ticket_id) is None

    def test_wait_times_out_on_live_ticket(self):
        release = threading.Event()
        try:
            with _scheduler(TickingGenerator(release=release), max_workers=1) as scheduler:
                ticket = scheduler.submit(_request())
                with pytest.raises(TimeoutError):
                    scheduler.wait(ticket.ticket_id, timeout=0.2)
                release.set()
                assert scheduler.wait(ticket.ticket_id, timeout=60)["state"] == TICKET_DONE
        finally:
            release.set()


class TestDeduplication:
    def test_identical_live_request_joins_ticket(self):
        release = threading.Event()
        try:
            with _scheduler(TickingGenerator(release=release), max_workers=1) as scheduler:
                first = scheduler.submit(_request(seed=1))
                second = scheduler.submit(_request(seed=1))
                assert second.ticket_id == first.ticket_id
                assert second.deduplicated
                distinct = scheduler.submit(_request(seed=2))
                assert distinct.ticket_id != first.ticket_id
                release.set()
                scheduler.wait(first.ticket_id, timeout=60)
                scheduler.wait(distinct.ticket_id, timeout=60)
        finally:
            release.set()

    def test_completed_request_without_store_reexecutes(self):
        generator = TickingGenerator()
        with _scheduler(generator, max_workers=1) as scheduler:
            first = scheduler.submit(_request())
            scheduler.wait(first.ticket_id, timeout=60)
            second = scheduler.submit(_request())
            assert second.ticket_id != first.ticket_id
            scheduler.wait(second.ticket_id, timeout=60)
            assert generator.calls == 2


class TestBackPressure:
    def test_full_queue_raises_scheduler_full(self):
        release = threading.Event()
        try:
            with _scheduler(
                TickingGenerator(release=release), max_workers=1, max_pending=2
            ) as scheduler:
                scheduler.submit(_request(seed=1))
                scheduler.submit(_request(seed=2))
                with pytest.raises(SchedulerFullError) as excinfo:
                    scheduler.submit(_request(seed=3))
                assert excinfo.value.capacity == 2
                release.set()
        finally:
            release.set()

    def test_capacity_frees_up_after_completion(self):
        with _scheduler(max_workers=1, max_pending=1) as scheduler:
            first = scheduler.submit(_request(seed=1))
            scheduler.wait(first.ticket_id, timeout=60)
            second = scheduler.submit(_request(seed=2))
            assert scheduler.wait(second.ticket_id, timeout=60)["state"] == TICKET_DONE


class TestCancellation:
    def test_cancel_queued_ticket(self, tmp_path):
        release = threading.Event()
        store = ResultStore(tmp_path / "results.sqlite")
        try:
            with _scheduler(
                TickingGenerator(release=release), max_workers=1, store=store
            ) as scheduler:
                running = scheduler.submit(_request(seed=1))
                queued = scheduler.submit(_request(seed=2))
                assert scheduler.cancel(queued.ticket_id)
                snapshot = scheduler.status(queued.ticket_id)
                assert snapshot["state"] == TICKET_CANCELLED
                events, _, done = scheduler.events_since(queued.ticket_id)
                assert done
                assert events[-1].kind == EVENT_REQUEST_CANCELLED
                release.set()
                scheduler.wait(running.ticket_id, timeout=60)
                # Only the completed request reached the store — a cancelled
                # ticket never leaves a row.
                assert len(store) == 1
                assert queued.request_hash not in store.request_hashes()
        finally:
            release.set()
            store.close()

    def test_cancel_running_ticket_cooperatively(self, tmp_path):
        release = threading.Event()
        store = ResultStore(tmp_path / "results.sqlite")
        try:
            with _scheduler(
                TickingGenerator(release=release, tick_seconds=0.02),
                max_workers=1,
                store=store,
            ) as scheduler:
                ticket = scheduler.submit(_request())
                # Wait for the first episode tick: the request is mid-stage.
                deadline = time.monotonic() + 30
                while not scheduler.status(ticket.ticket_id)["events_seen"]:
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
                assert scheduler.cancel(ticket.ticket_id)
                snapshot = scheduler.wait(ticket.ticket_id, timeout=60)
                assert snapshot["state"] == TICKET_CANCELLED
                assert snapshot["error_kind"] == "RequestCancelledError"
                assert len(store) == 0
        finally:
            release.set()
            store.close()

    def test_cancel_terminal_ticket_reports_false(self):
        with _scheduler(max_workers=1) as scheduler:
            ticket = scheduler.submit(_request())
            scheduler.wait(ticket.ticket_id, timeout=60)
            assert not scheduler.cancel(ticket.ticket_id)

    def test_shutdown_cancels_queued_tickets(self):
        release = threading.Event()
        try:
            scheduler = _scheduler(TickingGenerator(release=release), max_workers=1)
            running = scheduler.submit(_request(seed=1))
            deadline = time.monotonic() + 30
            while scheduler.status(running.ticket_id)["state"] != "running":
                assert time.monotonic() < deadline
                time.sleep(0.01)
            queued = scheduler.submit(_request(seed=2))
            release.set()
            scheduler.shutdown()
            assert scheduler.status(running.ticket_id)["state"] == TICKET_DONE
            assert scheduler.status(queued.ticket_id)["state"] == TICKET_CANCELLED
            with pytest.raises(RuntimeError):
                scheduler.submit(_request(seed=3))
        finally:
            release.set()


class TestTimeouts:
    def test_request_timeout_cancels_ticket(self, tmp_path):
        store = ResultStore(tmp_path / "results.sqlite")
        try:
            with _scheduler(
                TickingGenerator(ticks=10_000, tick_seconds=0.02),
                max_workers=1,
                store=store,
            ) as scheduler:
                ticket = scheduler.submit(_request(), timeout=0.15)
                snapshot = scheduler.wait(ticket.ticket_id, timeout=60)
                assert snapshot["state"] == TICKET_CANCELLED
                assert snapshot["error_kind"] == "RequestTimeoutError"
                assert len(store) == 0
        finally:
            store.close()

    def test_default_timeout_applies(self):
        with _scheduler(
            TickingGenerator(ticks=10_000, tick_seconds=0.02),
            max_workers=1,
            default_timeout=0.15,
        ) as scheduler:
            ticket = scheduler.submit(_request())
            assert scheduler.wait(ticket.ticket_id, timeout=60)["state"] == TICKET_CANCELLED


class TestEngineCooperativeInterruption:
    """The engine-level primitives the scheduler builds on."""

    def test_explore_timeout_raises(self):
        engine = LinxEngine(
            session_generator=TickingGenerator(ticks=10_000, tick_seconds=0.02)
        )
        with pytest.raises(RequestTimeoutError):
            engine.explore(_request(), timeout=0.15)

    def test_explore_cancel_event_raises(self):
        cancel = threading.Event()
        cancel.set()
        engine = LinxEngine(session_generator=TickingGenerator())
        with pytest.raises(RequestCancelledError):
            engine.explore(_request(), cancel_event=cancel)

    def test_explore_many_timeout_raises(self):
        engine = LinxEngine(
            session_generator=TickingGenerator(ticks=10_000, tick_seconds=0.02)
        )
        with pytest.raises(RequestTimeoutError):
            engine.explore_many([_request()], max_workers=1, timeout=0.15)

    def test_generate_stage_marked_cancelled(self):
        from repro.engine import STAGE_GENERATE, STATUS_CANCELLED

        engine = LinxEngine(
            session_generator=TickingGenerator(ticks=10_000, tick_seconds=0.02)
        )
        events = []
        with pytest.raises(RequestTimeoutError):
            engine.explore(_request(), timeout=0.15, observer=events.append)
        cancelled = [
            event for event in events
            if event.payload.get("status") == STATUS_CANCELLED
        ]
        assert cancelled and cancelled[0].stage == STAGE_GENERATE


def _raise_stage_failure():
    from repro.engine import StageFailedError

    raise StageFailedError("generate_session", RuntimeError("boom"))


class TestErrorPickling:
    """Engine errors must cross the process-pool pipe intact."""

    def test_errors_round_trip_through_pickle(self):
        import pickle

        from repro.engine import FieldError, StageFailedError

        samples = [
            StageFailedError("generate_session", RuntimeError("boom")),
            RequestCancelledError("req-1"),
            RequestTimeoutError("req-1", 30.0),
            SchedulerFullError(5, 4),
            RequestValidationError([FieldError("goal", "bad")]),
        ]
        for exc in samples:
            restored = pickle.loads(pickle.dumps(exc))
            assert type(restored) is type(exc)
            assert str(restored) == str(exc)
        assert pickle.loads(pickle.dumps(samples[2])).timeout == 30.0
        assert pickle.loads(pickle.dumps(samples[4])).fields() == ("goal",)

    def test_stage_failure_does_not_brick_a_process_pool(self):
        from concurrent.futures import ProcessPoolExecutor

        from repro.engine import StageFailedError

        with ProcessPoolExecutor(max_workers=1) as pool:
            with pytest.raises(StageFailedError, match="generate_session"):
                pool.submit(_raise_stage_failure).result()
            # An unpicklable exception would have broken the pool here and
            # failed every later task of the long-lived scheduler pool.
            assert pool.submit(len, [1, 2]).result() == 2


class TestConfigFingerprint:
    def test_custom_stage_objects_change_the_namespace(self):
        class LoudGenerator(TickingGenerator):
            name = "loud"

        default = LinxEngine(cdrl_config=CdrlConfig(episodes=5))
        custom = LinxEngine(
            cdrl_config=CdrlConfig(episodes=5), session_generator=LoudGenerator()
        )
        same_custom = LinxEngine(
            cdrl_config=CdrlConfig(episodes=5), session_generator=LoudGenerator()
        )
        assert default.config_fingerprint() != custom.config_fingerprint()
        assert custom.config_fingerprint() == same_custom.config_fingerprint()

    def test_episode_budget_changes_the_namespace(self):
        a = LinxEngine(cdrl_config=CdrlConfig(episodes=5))
        b = LinxEngine(cdrl_config=CdrlConfig(episodes=9))
        assert a.config_fingerprint() != b.config_fingerprint()

    def test_engine_level_stage_selection_changes_the_namespace(self):
        a = LinxEngine(cdrl_config=CdrlConfig(episodes=5))
        b = LinxEngine(
            cdrl_config=CdrlConfig(episodes=5),
            stages={"session_generator": "atena"},
        )
        assert a.config_fingerprint() != b.config_fingerprint()


class TestProcessExecution:
    def test_process_scheduler_streams_episode_events(self, tmp_path):
        engine = LinxEngine(cdrl_config=CdrlConfig(episodes=5))
        store = ResultStore(tmp_path / "results.sqlite")
        try:
            with RequestScheduler(
                engine, store=store, workers="process", max_workers=1
            ) as scheduler:
                ticket = scheduler.submit(_request(num_rows=100, episodes=5, seed=0))
                snapshot = scheduler.wait(ticket.ticket_id, timeout=300)
                assert snapshot["state"] == TICKET_DONE
                events, _, done = scheduler.events_since(ticket.ticket_id)
                assert done
                kinds = [event.kind for event in events]
                # Episode-level progress crossed the process boundary.
                assert EVENT_EPISODE in kinds
                assert kinds[0] == EVENT_REQUEST_STARTED
                assert kinds[-1] == EVENT_REQUEST_FINISHED
                # Identical resubmission is served from the store.
                replay = scheduler.submit(_request(num_rows=100, episodes=5, seed=0))
                assert scheduler.wait(replay.ticket_id, timeout=30)["served_from_store"]
        finally:
            store.close()

    def test_process_scheduler_rejects_custom_stage_objects(self):
        engine = LinxEngine(session_generator=TickingGenerator())
        with pytest.raises(ValueError):
            RequestScheduler(engine, workers="process")


class TestTerminalRetention:
    def test_constructor_validates_retention_arguments(self):
        engine = LinxEngine(session_generator=TickingGenerator())
        with pytest.raises(ValueError, match="max_terminal_tickets"):
            RequestScheduler(engine, max_terminal_tickets=0)
        with pytest.raises(ValueError, match="terminal_events_keep"):
            RequestScheduler(engine, terminal_events_keep=-1)

    def test_old_terminal_tickets_are_truncated_then_dropped(self):
        with _scheduler(
            max_workers=1, max_terminal_tickets=2, terminal_events_keep=1
        ) as scheduler:
            tickets = []
            for index in range(4):
                ticket = scheduler.submit(_request(request_id=f"gc-{index}", seed=index))
                scheduler.wait(ticket.ticket_id, timeout=60)
                tickets.append(ticket.ticket_id)

            # The two oldest were dropped entirely: unknown ticket.
            for dropped in tickets[:2]:
                with pytest.raises(KeyError):
                    scheduler.status(dropped)
            # The third is retained but truncated to its terminal event.
            events, _, done = scheduler.events_since(tickets[2])
            assert done
            assert [event.kind for event in events] == [EVENT_REQUEST_FINISHED]
            assert scheduler.status(tickets[2])["state"] == TICKET_DONE
            # The newest keeps its full event log.
            events, _, done = scheduler.events_since(tickets[3])
            assert done
            kinds = [event.kind for event in events]
            assert kinds[0] == EVENT_REQUEST_STARTED
            assert EVENT_EPISODE in kinds

            described = scheduler.describe()
            assert described["terminal_retention"] == {
                "max_terminal_tickets": 2,
                "terminal_events_keep": 1,
            }
            assert described["gc"]["dropped_tickets"] == 2
            assert described["gc"]["truncated_events"] > 0

    def test_live_tickets_are_never_collected(self):
        release = threading.Event()
        generator = TickingGenerator(release=release)
        with _scheduler(
            generator, max_workers=1, max_terminal_tickets=1, terminal_events_keep=0
        ) as scheduler:
            live = scheduler.submit(_request(request_id="gc-live", seed=0))
            try:
                # Terminal churn while gc-live is still running: a queued
                # ticket cancelled behind the busy worker.
                dead = scheduler.submit(_request(request_id="gc-dead", seed=1))
                scheduler.cancel(dead.ticket_id)
                scheduler.wait(dead.ticket_id, timeout=60)
                assert scheduler.status(live.ticket_id)["state"] in (
                    "queued",
                    "running",
                )
            finally:
                release.set()
            snapshot = scheduler.wait(live.ticket_id, timeout=60)
            assert snapshot["state"] == TICKET_DONE

    def test_default_retention_keeps_everything_small_scale(self):
        with _scheduler(max_workers=1) as scheduler:
            tickets = [
                scheduler.submit(_request(request_id=f"keep-{index}", seed=index))
                for index in range(3)
            ]
            for ticket in tickets:
                scheduler.wait(ticket.ticket_id, timeout=60)
            for ticket in tickets:
                events, _, done = scheduler.events_since(ticket.ticket_id)
                assert done and len(events) > 2
            gc_stats = scheduler.describe()["gc"]
            assert gc_stats == {"dropped_tickets": 0, "truncated_events": 0}

    def test_duplicate_submit_after_terminal_gc_serves_from_store(self, tmp_path):
        """Dedup vs. ticket GC: a hash whose terminal ticket was dropped must
        fall through to the result store, not crash or re-execute."""
        generator = TickingGenerator()
        store = ResultStore(tmp_path / "results.sqlite")
        try:
            with _scheduler(
                generator,
                max_workers=1,
                store=store,
                max_terminal_tickets=1,
                terminal_events_keep=0,
            ) as scheduler:
                first = scheduler.submit(_request(seed=1))
                scheduler.wait(first.ticket_id, timeout=60)
                # Churn: a second, different request evicts seed-1's
                # terminal ticket from the table.
                churn = scheduler.submit(_request(seed=2))
                scheduler.wait(churn.ticket_id, timeout=60)
                with pytest.raises(KeyError):
                    scheduler.status(first.ticket_id)
                assert generator.calls == 2
                # The duplicate resubmission: no live ticket, no in-table
                # terminal ticket — served from the store, not re-executed.
                again = scheduler.submit(_request(seed=1))
                snapshot = scheduler.wait(again.ticket_id, timeout=30)
                assert snapshot["state"] == TICKET_DONE
                assert snapshot["served_from_store"] is True
                assert generator.calls == 2
        finally:
            store.close()


class TestDrain:
    def test_drain_rejects_new_work_but_finishes_running(self):
        from repro.engine import SchedulerDrainingError

        release = threading.Event()
        try:
            with _scheduler(TickingGenerator(release=release), max_workers=1) as scheduler:
                running = scheduler.submit(_request(seed=1))
                scheduler.drain()
                assert scheduler.health()["status"] == "draining"
                with pytest.raises(SchedulerDrainingError) as excinfo:
                    scheduler.submit(_request(seed=2))
                assert scheduler.replica_id in str(excinfo.value)
                release.set()
                # In-flight work still completes normally under drain.
                assert scheduler.wait(running.ticket_id, timeout=60)["state"] == TICKET_DONE
        finally:
            release.set()

    def test_health_reports_readiness_signals(self):
        with _scheduler(max_workers=1) as scheduler:
            health = scheduler.health()
            assert health["status"] == "ok"
            assert health["leases_held"] == 0
            assert health["queue_depth"] == 0
            assert health["replica_id"] == scheduler.replica_id

    def test_shutdown_releases_held_leases(self, tmp_path):
        store = ResultStore(tmp_path / "results.sqlite")
        try:
            scheduler = _scheduler(TickingGenerator(), max_workers=1, store=store)
            namespace = scheduler._store_namespace
            # A lease the worker never released (e.g. it died hard).
            store.claim(namespace, "orphan-hash", scheduler.replica_id, 300.0)
            scheduler._held_leases.add("orphan-hash")
            scheduler.shutdown()
            assert store.lease(namespace, "orphan-hash") is None
        finally:
            store.close()
