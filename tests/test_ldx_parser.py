"""Tests for LDX parsing, patterns and the AST."""

from __future__ import annotations

import pytest

from repro.ldx import (
    LdxSemanticError,
    LdxSyntaxError,
    OperationPattern,
    parse_ldx,
    try_parse_ldx,
)
from repro.ldx.patterns import FieldPattern


class TestOperationPattern:
    def test_parse_literal_fields(self):
        pattern = OperationPattern.parse("[F,country,eq,India]")
        assert pattern.kind == "F"
        assert pattern.matches(("F", "country", "eq", "India"))
        assert not pattern.matches(("F", "country", "eq", "US"))

    def test_wildcards_match_anything(self):
        pattern = OperationPattern.parse("[G,.*]")
        assert pattern.matches(("G", "anything", "count", "x"))

    def test_quoted_literals(self):
        pattern = OperationPattern.parse("[F,'country',eq,'US']")
        assert pattern.matches(("F", "country", "eq", "US"))

    def test_disjunction_regex(self):
        pattern = OperationPattern.parse("[G,country,SUM|AVG,.*]")
        assert pattern.matches(("G", "country", "sum", "x"))
        assert pattern.matches(("G", "country", "AVG", "x"))
        assert not pattern.matches(("G", "country", "count", "x"))

    def test_continuity_capture_and_constraint(self):
        pattern = OperationPattern.parse("[F,country,eq,(?<X>.*)]")
        assert pattern.matches(("F", "country", "eq", "India"), {})
        captured = pattern.capture(("F", "country", "eq", "India"), {})
        assert captured == {"X": "India"}
        # With X bound, only the same term matches.
        assert pattern.matches(("F", "country", "eq", "India"), {"X": "India"})
        assert not pattern.matches(("F", "country", "eq", "US"), {"X": "India"})

    def test_placeholder_is_continuity(self):
        pattern = OperationPattern.parse("[G,<COL>,<AGG_FUNC>,<AGG_COL>]")
        assert pattern.continuity_variables() == ["COL", "AGG_FUNC", "AGG_COL"]

    def test_kind_mismatch(self):
        pattern = OperationPattern.parse("[F,country,eq,.*]")
        assert not pattern.matches(("G", "country", "eq", "x"))

    def test_substitute_turns_bound_vars_into_literals(self):
        pattern = OperationPattern.parse("[F,country,eq,(?<X>.*)]")
        substituted = pattern.substitute({"X": "India"})
        assert substituted.fields[2].kind == "literal"
        assert substituted.fields[2].value == "India"

    def test_specified_and_matched_field_counts(self):
        pattern = OperationPattern.parse("[F,country,eq,(?<X>.*)]")
        assert pattern.specified_field_count() == 2
        assert pattern.matched_field_count(("F", "country", "neq", "India")) == 1

    def test_numeric_literal_equality(self):
        pattern = OperationPattern.parse("[F,Stars,eq,3]")
        assert pattern.matches(("F", "Stars", "eq", "3.0"))

    def test_render_roundtrip(self):
        text = "[F,country,eq,(?<X>.*)]"
        assert OperationPattern.parse(OperationPattern.parse(text).render()).render() == text

    def test_invalid_pattern_raises(self):
        with pytest.raises(LdxSyntaxError):
            OperationPattern.parse("F,country,eq")
        with pytest.raises(LdxSyntaxError):
            OperationPattern.parse("[Z,country]")

    def test_field_parse_kinds(self):
        assert FieldPattern.parse(".*").kind == "any"
        assert FieldPattern.parse("'x'").kind == "literal"
        assert FieldPattern.parse("(?<V>.*)").kind == "continuity"
        assert FieldPattern.parse("SUM|AVG").kind == "regex"
        assert FieldPattern.parse("country").kind == "literal"


class TestParser:
    def test_hello_world_example(self):
        query = parse_ldx(
            """
            ROOT CHILDREN <A,B>
            A LIKE [G,(?<X>.*),.*]
            B LIKE [F,(?<X>.*),.*]
            """
        )
        assert query.node_names() == ["ROOT", "A", "B"]
        assert query.continuity_variables() == ["X"]
        assert query.required_operations() == 2

    def test_begin_and_braces_syntax(self):
        query = parse_ldx(
            """
            BEGIN CHILDREN {A1,A2}
            A1 LIKE [F,Stars,eq,3] and CHILDREN {B1}
            B1 LIKE [G,<COL>,<AGG_FUNC>,<AGG_COL>]
            A2 LIKE [F,Stars,eq,4] and CHILDREN {B2}
            B2 LIKE [G,<COL>,<AGG_FUNC>,<AGG_COL>]
            """
        )
        assert query.root_name() == "BEGIN"
        assert len(query.operational_specs()) == 4
        assert query.named_children_of("A1") == ["B1"]

    def test_descendants_and_plus(self):
        query = parse_ldx(
            """
            BEGIN DESCENDANTS <A1>
            A1 LIKE [F,month,ge,6] and CHILDREN {B1,+}
            B1 LIKE [G,.*]
            """
        )
        clause = query.spec_for("A1").structure[0]
        assert clause.extra == 1
        assert clause.min_related() == 2
        assert query.required_operations() == 3

    def test_comments_and_blank_lines_ignored(self):
        query = parse_ldx("# comment\n\nROOT CHILDREN <A>\nA LIKE [G,.*]\n")
        assert len(query.specs) == 2

    def test_duplicate_spec_raises(self):
        with pytest.raises(LdxSemanticError):
            parse_ldx("ROOT CHILDREN <A>\nA LIKE [G,.*]\nA LIKE [F,.*]")

    def test_dangling_reference_raises(self):
        with pytest.raises(LdxSemanticError):
            parse_ldx("ROOT CHILDREN <A,Z>\nA LIKE [G,.*]")

    def test_missing_root_raises(self):
        with pytest.raises(LdxSemanticError):
            parse_ldx("A LIKE [G,.*]")

    def test_empty_query_raises(self):
        with pytest.raises(LdxSyntaxError):
            parse_ldx("   \n  ")

    def test_bad_clause_raises(self):
        with pytest.raises(LdxSyntaxError):
            parse_ldx("ROOT NEPHEWS <A>")

    def test_try_parse_returns_none_on_error(self):
        assert try_parse_ldx("ROOT NEPHEWS <A>") is None
        assert try_parse_ldx("ROOT CHILDREN <A>\nA LIKE [G,.*]") is not None


class TestAstDerivedProperties:
    def test_struct_and_opr_split(self, comparison_query):
        struct = comparison_query.structural_subset()
        assert all(spec.operation is None for spec in struct.specs)
        assert len(comparison_query.operational_specs()) == 4

    def test_minimal_tree_shape(self, comparison_query):
        tree = comparison_query.minimal_tree()
        assert tree.size() == 5
        assert len(tree.children) == 2

    def test_minimal_session_steps(self, comparison_query):
        # 4 operations + 2 back moves between the branches.
        assert comparison_query.minimal_session_steps() == 6

    def test_preorder_named_nodes(self, comparison_query):
        assert comparison_query.preorder_named_nodes() == ["B1", "C1", "B2", "C2"]

    def test_render_reparses(self, comparison_query):
        rendered = comparison_query.render()
        reparsed = parse_ldx(rendered)
        assert reparsed.node_names() == comparison_query.node_names()
