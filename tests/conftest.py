"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.dataframe import DataTable
from repro.explore import (
    BackOperation,
    FilterOperation,
    GroupAggOperation,
    session_from_operations,
)
from repro.ldx import parse_ldx

#: LDX query used throughout: the "atypical country" comparison of Figure 1c.
COMPARISON_LDX = """
ROOT CHILDREN <B1,B2>
B1 LIKE [F,country,eq,(?<X>.*)] and CHILDREN {C1}
C1 LIKE [G,(?<Y>.*),count,.*]
B2 LIKE [F,country,neq,(?<X>.*)] and CHILDREN {C2}
C2 LIKE [G,(?<Y>.*),count,.*]
"""


@pytest.fixture
def small_table() -> DataTable:
    """A tiny Netflix-like table with known contents."""
    return DataTable(
        {
            "country": ["India", "US", "US", "India", "UK", "US", "India", "UK"],
            "type": ["Movie", "TV Show", "TV Show", "Movie", "TV Show", "TV Show", "Movie", "Movie"],
            "rating": ["TV-14", "TV-MA", "TV-MA", "TV-14", "TV-MA", "PG", "TV-14", "R"],
            "duration": [100, 50, 90, 110, 45, 95, 120, 105],
        },
        name="netflix_mini",
    )


@pytest.fixture
def comparison_query():
    """Parsed comparison LDX query (eq / neq branches with shared continuity)."""
    return parse_ldx(COMPARISON_LDX)


@pytest.fixture
def compliant_session(small_table):
    """A session that fully complies with :data:`COMPARISON_LDX`."""
    return session_from_operations(
        small_table,
        [
            FilterOperation("country", "eq", "India"),
            GroupAggOperation("type", "count", "type"),
            BackOperation(2),
            FilterOperation("country", "neq", "India"),
            GroupAggOperation("type", "count", "type"),
        ],
    )


@pytest.fixture
def noncompliant_session(small_table):
    """A session with the wrong structure (a single chain)."""
    return session_from_operations(
        small_table,
        [
            FilterOperation("country", "eq", "India"),
            GroupAggOperation("type", "count", "type"),
            GroupAggOperation("type", "count", "type"),
        ],
    )
