"""Tests for the synthetic datasets and the goal-oriented ADE benchmark."""

from __future__ import annotations

import pytest

from repro.bench import (
    META_GOALS,
    exemplar_instances,
    generate_benchmark,
    meta_goal_by_id,
    paraphrase,
    paraphrases,
    total_target_instances,
)
from repro.datasets import (
    dataset_names,
    dataset_schema_description,
    generate_flights,
    generate_netflix,
    generate_playstore,
    load_dataset,
)
from repro.datasets.flights import SCHEMA as FLIGHTS_SCHEMA
from repro.datasets.netflix import SCHEMA as NETFLIX_SCHEMA
from repro.datasets.playstore import SCHEMA as PLAYSTORE_SCHEMA


class TestDatasets:
    def test_registry_names(self):
        assert set(dataset_names()) == {"netflix", "flights", "playstore"}

    def test_netflix_schema_and_size(self):
        table = generate_netflix(num_rows=300, seed=1)
        assert table.columns == list(NETFLIX_SCHEMA)
        assert len(table) == 300

    def test_netflix_headline_properties(self):
        table = generate_netflix(num_rows=1500, seed=3)
        countries = table.value_counts("country")
        assert max(countries, key=countries.get) == "United States"
        india = table.filter_rows([c == "India" for c in table.column("country")])
        india_movies = india.value_counts("type").get("Movie", 0)
        assert india_movies / max(1, len(india)) > 0.8
        india_ratings = india.value_counts("rating")
        assert max(india_ratings, key=india_ratings.get) == "TV-14"

    def test_flights_schema_and_delay_structure(self):
        table = generate_flights(num_rows=800, seed=2)
        assert table.columns == list(FLIGHTS_SCHEMA)
        reasons = set(table.distinct("delay_reason"))
        assert "weather" in reasons and "none" in reasons
        assert set(table.distinct("month")) <= set(range(1, 13))

    def test_playstore_schema_and_popular_apps_free(self):
        table = generate_playstore(num_rows=800, seed=2)
        assert table.columns == list(PLAYSTORE_SCHEMA)
        popular = table.filter_rows([v >= 1_000_000 for v in table.column("installs")])
        free = sum(1 for p in popular.column("price") if p == 0.0)
        assert free / max(1, len(popular)) > 0.85

    def test_generation_is_deterministic(self):
        a = generate_netflix(num_rows=100, seed=5)
        b = generate_netflix(num_rows=100, seed=5)
        assert a.to_columns() == b.to_columns()

    def test_load_dataset_caches(self):
        a = load_dataset("netflix", num_rows=120)
        b = load_dataset("netflix", num_rows=120)
        assert a is b

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            load_dataset("imdb")

    def test_schema_description_contains_columns(self):
        description = dataset_schema_description("playstore")
        assert "category" in description and "Sample rows" in description


class TestParaphrase:
    def test_paraphrase_deterministic(self):
        goal = "Find an atypical country"
        assert paraphrase(goal, 1) == paraphrase(goal, 1)

    def test_paraphrases_are_distinct(self):
        results = paraphrases("Examine characteristics of successful TV shows", 4)
        assert len(results) == len(set(results)) >= 3

    def test_paraphrase_keeps_key_terms(self):
        goal = "Survey the price attribute of the data"
        assert "price" in paraphrase(goal, 2).lower()


class TestBenchmark:
    @pytest.fixture(scope="class")
    def corpus(self):
        return generate_benchmark()

    def test_total_instances_matches_paper(self, corpus):
        assert len(corpus) == 182
        assert total_target_instances() == 182

    def test_counts_per_meta_goal_match_table1(self, corpus):
        expected = {1: 18, 2: 16, 3: 22, 4: 21, 5: 27, 6: 22, 7: 28, 8: 28}
        assert corpus.counts_per_meta_goal() == expected

    def test_all_gold_ldx_parse(self, corpus):
        for instance in corpus.instances:
            query = instance.ldx_query()
            assert query.required_operations() >= 1

    def test_instances_cover_all_datasets(self, corpus):
        for dataset in ("netflix", "flights", "playstore"):
            assert len(corpus.by_dataset(dataset)) > 0

    def test_goal_texts_are_non_empty_and_varied(self, corpus):
        goals = [instance.goal for instance in corpus.instances]
        assert all(goal.strip() for goal in goals)
        assert len(set(goals)) > 100

    def test_overview_rows_match_meta_goals(self, corpus):
        rows = corpus.overview_rows()
        assert len(rows) == len(META_GOALS)
        assert sum(row["instances"] for row in rows) == 182

    def test_exemplar_instances_one_per_meta_goal(self, corpus):
        exemplars = exemplar_instances(corpus)
        assert len(exemplars) == 8
        assert {e.meta_goal_id for e in exemplars} == set(range(1, 9))

    def test_meta_goal_lookup(self):
        assert meta_goal_by_id(1).name == "Identify an uncommon entity"
        with pytest.raises(KeyError):
            meta_goal_by_id(99)

    def test_gold_ldx_attributes_exist_in_datasets(self, corpus):
        from repro.ldx.patterns import FIELD_LITERAL

        for instance in corpus.instances:
            table = load_dataset(instance.dataset)
            for spec in instance.ldx_query().operational_specs():
                fields = spec.operation.fields
                if fields and fields[0].kind == FIELD_LITERAL:
                    assert fields[0].value in table.columns, (
                        f"{instance.instance_id}: {fields[0].value} not in {instance.dataset}"
                    )
