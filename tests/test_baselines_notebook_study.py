"""Tests for baselines, notebook rendering, insight extraction and the study harness."""

from __future__ import annotations

import json

import pytest

from repro.baselines import (
    AtenaAgent,
    AtenaConfig,
    ChatGptDirectBaseline,
    HumanExpertBaseline,
    SheetsExplorerBaseline,
    SheetsSpecification,
    specification_from_ldx,
)
from repro.ldx import parse_ldx, verify
from repro.notebook import extract_insights, render_notebook
from repro.study import SimulatedRaterPanel, StudyTask, UserStudy


class TestNotebookRendering:
    def test_markdown_contains_steps_and_goal(self, compliant_session):
        notebook = render_notebook(compliant_session, goal="Find an atypical country")
        markdown = notebook.to_markdown()
        assert "Find an atypical country" in markdown
        assert "## Step 1" in markdown and "## Step 4" in markdown
        assert "groupby" in markdown

    def test_ipynb_is_valid_json_with_cells(self, compliant_session):
        notebook = render_notebook(compliant_session)
        document = json.loads(notebook.to_ipynb_json())
        assert document["nbformat"] == 4
        code_cells = [c for c in document["cells"] if c["cell_type"] == "code"]
        assert len(code_cells) == compliant_session.num_queries()

    def test_commentary_reports_filter_share(self, compliant_session):
        notebook = render_notebook(compliant_session)
        filter_cells = [c for c in notebook.cells if c.title.startswith("FILTER")]
        assert any("%" in cell.commentary for cell in filter_cells)


class TestInsights:
    def test_contrast_insight_found_in_comparison_session(self, compliant_session):
        insights = extract_insights(compliant_session)
        assert any(insight.kind == "contrast" for insight in insights)

    def test_dominant_group_insight(self, compliant_session):
        insights = extract_insights(compliant_session)
        assert any(insight.kind == "dominant_group" for insight in insights)

    def test_insights_deduplicated_and_bounded(self, compliant_session):
        insights = extract_insights(compliant_session, max_insights=3)
        assert len(insights) <= 3
        assert len({i.text for i in insights}) == len(insights)

    def test_empty_session_yields_no_insights(self, small_table):
        from repro.explore import session_from_operations

        assert extract_insights(session_from_operations(small_table, [])) == []


class TestBaselines:
    def test_chatgpt_baseline_is_descriptive(self, small_table):
        session = ChatGptDirectBaseline().generate(small_table, "Find an atypical country")
        assert session.num_queries() >= 2
        kinds = [node.operation.kind for node in session.query_nodes()]
        assert kinds.count("G") >= 2  # mostly descriptive aggregations

    def test_chatgpt_baseline_not_compliant_with_comparison_goal(
        self, small_table, comparison_query
    ):
        session = ChatGptDirectBaseline().generate(small_table, "Find an atypical country")
        assert not verify(session.to_tree(), comparison_query)

    def test_sheets_specification_from_ldx(self, small_table, comparison_query):
        specification = specification_from_ldx(comparison_query, small_table)
        assert "country" in specification.columns

    def test_sheets_baseline_generates_univariate_summaries(self, small_table):
        specification = SheetsSpecification(columns=("country", "duration"), subset=None)
        session = SheetsExplorerBaseline().generate(small_table, specification)
        assert 1 <= session.num_queries() <= 5
        assert all(node.depth() <= 1 for node in session.query_nodes())

    def test_human_expert_is_compliant_and_high_utility(self, small_table, comparison_query):
        session = HumanExpertBaseline().generate(small_table, comparison_query)
        assert verify(session.to_tree(), comparison_query)

    def test_atena_agent_produces_session(self, small_table):
        agent = AtenaAgent(small_table, config=AtenaConfig(episodes=6, episode_length=3))
        result = agent.run()
        assert result.session.steps_taken == 3
        assert len(result.history.episode_returns) == 6


class TestStudy:
    def test_panel_rates_compliant_sessions_higher(
        self, compliant_session, noncompliant_session, comparison_query
    ):
        panel = SimulatedRaterPanel(num_raters=10)
        good = panel.rate(
            "LINX", compliant_session, "goal", comparison_query, "netflix_mini"
        )
        bad = panel.rate(
            "ATENA", noncompliant_session, "goal", comparison_query, "netflix_mini"
        )
        assert good.relevance > bad.relevance
        assert 1 <= good.relevance <= 7
        assert good.relevant_insights >= bad.relevant_insights

    def test_panel_deterministic(self, compliant_session, comparison_query):
        panel = SimulatedRaterPanel(num_raters=5)
        first = panel.rate("LINX", compliant_session, "goal", comparison_query, "netflix_mini")
        second = panel.rate("LINX", compliant_session, "goal", comparison_query, "netflix_mini")
        assert first.relevance == second.relevance

    def test_study_runs_on_limited_systems(self):
        study = UserStudy(
            linx_episodes=15,
            atena_episodes=10,
            dataset_rows=120,
            systems=("ChatGPT", "Google Sheets"),
        )
        tasks = [
            StudyTask(
                dataset="netflix",
                goal="Find a country with different viewing habits than the rest of the world",
                ldx_text=(
                    "ROOT CHILDREN <B1,B2>\n"
                    "B1 LIKE [F,country,eq,(?<X>.*)] and CHILDREN {C1}\n"
                    "C1 LIKE [G,(?<Y>.*),count,.*]\n"
                    "B2 LIKE [F,country,neq,(?<X>.*)] and CHILDREN {C2}\n"
                    "C2 LIKE [G,(?<Y>.*),count,.*]\n"
                ),
            )
        ]
        outcome = study.run(tasks)
        assert len(outcome.results) == 2
        relevance = outcome.relevance_by_dataset()
        assert "ChatGPT" in relevance
