"""End-to-end tests for the LINX facade (goal → specifications → notebook)."""

from __future__ import annotations

import pytest

from repro import Linx
from repro.cdrl import CdrlConfig
from repro.dataframe import DataTable
from repro.ldx import try_parse_ldx


@pytest.fixture(scope="module")
def linx() -> Linx:
    # Small training budget: the specification-aware guidance makes compliant
    # sessions reachable even with few episodes.
    return Linx(cdrl_config=CdrlConfig(episodes=30, seed=3))


@pytest.fixture
def netflix_mini() -> DataTable:
    return DataTable(
        {
            "country": ["India", "US", "US", "India", "UK", "US", "India", "UK", "US", "India"],
            "type": ["Movie"] * 4 + ["TV Show"] * 3 + ["Movie"] * 3,
            "rating": ["TV-14", "TV-MA", "TV-MA", "TV-14", "TV-MA", "PG", "TV-14", "R", "TV-MA", "TV-14"],
            "duration": [100, 50, 90, 110, 45, 95, 120, 105, 80, 99],
        },
        name="netflix",
    )


class TestSpecificationDerivation:
    def test_derived_specs_parse(self, linx):
        ldx_text = linx.derive_specifications(
            "netflix", "Find a country with different viewing habits than the rest of the world"
        )
        assert try_parse_ldx(ldx_text) is not None

    def test_derivation_mentions_goal_attribute(self, linx):
        ldx_text = linx.derive_specifications("playstore", "Survey the price attribute of the data")
        assert "price" in ldx_text


class TestEndToEnd:
    def test_explore_with_explicit_ldx(self, linx, netflix_mini, comparison_query):
        output = linx.explore(
            netflix_mini,
            "Find a country with different viewing habits than the rest of the world",
            ldx_text=comparison_query.render(),
        )
        assert output.session.num_queries() >= 4
        assert output.fully_compliant
        assert "## Step" in output.markdown()
        assert output.insights

    def test_explore_derives_specs_when_missing(self, linx, netflix_mini):
        output = linx.explore(
            netflix_mini, "Find a country with different viewing habits than the rest of the world"
        )
        assert output.query is not None
        assert output.session.num_queries() >= 1
        assert output.notebook.cells

    def test_malformed_ldx_falls_back(self, linx, netflix_mini):
        output = linx.explore(netflix_mini, "whatever goal", ldx_text="THIS IS NOT LDX (((")
        assert output.query is not None
        assert output.session.num_queries() >= 1
