"""Tests for the persistent result store (idempotency, replay, versioning)."""

from __future__ import annotations

import json
import sqlite3

import pytest

from repro.cdrl import CdrlConfig
from repro.datasets import load_dataset
from repro.engine import (
    ExploreRequest,
    ExploreResult,
    LinxEngine,
    RequestScheduler,
    ResultStore,
    SessionOutcome,
)
from repro.engine.store import STORE_SCHEMA_VERSION
from repro.explore import session_from_operations
from repro.explore.operations import FilterOperation, GroupAggOperation

LDX = "ROOT CHILDREN <A1>\nA1 LIKE [G,.*]"

#: Namespace used by direct-store tests (the scheduler uses the engine's
#: config fingerprint).
NS = "test-namespace"


@pytest.fixture
def store_path(tmp_path):
    return tmp_path / "results.sqlite"


@pytest.fixture
def request_() -> ExploreRequest:
    return ExploreRequest(
        goal="explore the catalogue",
        dataset="netflix",
        num_rows=120,
        ldx_text=LDX,
        episodes=6,
        seed=0,
    )


@pytest.fixture
def executed(request_) -> ExploreResult:
    engine = LinxEngine(cdrl_config=CdrlConfig(episodes=6))
    return engine.explore(request_)


class CountingGenerator:
    """A session generator that counts executions (store-idempotency probe)."""

    name = "counting"

    def __init__(self):
        self.calls = 0

    def generate(self, table, ldx_text, *, episodes=None, seed=None, cache=None,
                 on_episode=None):
        self.calls += 1
        if on_episode is not None:
            on_episode(0, 1.0, None)
        session = session_from_operations(
            table,
            [
                FilterOperation("country", "eq", "India"),
                GroupAggOperation("type", "count", "type"),
            ],
            cache=cache,
        )
        return SessionOutcome(session=session, episodes_trained=1)


class TestRoundTrip:
    def test_put_get_round_trips_losslessly(self, store_path, request_, executed):
        with ResultStore(store_path) as store:
            store.put(NS, request_.canonical_hash(), executed)
            loaded = store.get(NS, request_.canonical_hash())
        assert loaded == executed
        assert loaded.to_dict() == executed.to_dict()
        assert loaded.artifacts is None

    def test_payload_is_canonical_json(self, store_path, request_, executed):
        with ResultStore(store_path) as store:
            store.put(NS, request_.canonical_hash(), executed)
            payload = store.get_payload(NS, request_.canonical_hash())
        assert payload == json.loads(json.dumps(executed.to_dict()))

    def test_get_unknown_hash_is_a_miss(self, store_path):
        with ResultStore(store_path) as store:
            assert store.get(NS, "no-such-hash") is None
            assert store.misses == 1
            assert store.hits == 0

    def test_survives_reopen(self, store_path, request_, executed):
        store = ResultStore(store_path)
        store.put(NS, request_.canonical_hash(), executed)
        store.close()
        reopened = ResultStore(store_path)
        assert not reopened.invalidated
        assert len(reopened) == 1
        assert reopened.get(NS, request_.canonical_hash()) == executed
        reopened.close()

    def test_contains_delete_clear(self, store_path, request_, executed):
        with ResultStore(store_path) as store:
            key = request_.canonical_hash()
            assert not store.contains(NS, key)
            store.put(NS, key, executed)
            assert store.contains(NS, key)
            assert store.request_hashes() == [key]
            assert store.request_hashes(NS) == [key]
            assert store.request_hashes("other") == []
            assert store.delete(NS, key)
            assert not store.delete(NS, key)
            store.put(NS, key, executed)
            store.clear()
            assert len(store) == 0

    def test_namespaces_isolate_identical_hashes(self, store_path, request_, executed):
        """One hash stored under two namespaces is two independent rows."""
        with ResultStore(store_path) as store:
            key = request_.canonical_hash()
            store.put("config-a", key, executed)
            assert store.get("config-b", key) is None
            store.put("config-b", key, executed)
            assert len(store) == 2
            assert store.delete("config-a", key)
            assert store.get("config-b", key) == executed

    def test_prune_removes_only_old_rows(self, store_path, request_, executed):
        with ResultStore(store_path) as store:
            key = request_.canonical_hash()
            store.put(NS, key, executed)
            store.put(NS, "fresh-hash", executed)
            # Age the first row artificially; prune must be selective.
            with store._conn:
                store._conn.execute(
                    "UPDATE results SET created_at = created_at - 3600"
                    " WHERE request_hash = ?",
                    (key,),
                )
            assert store.prune(older_than=1800) == 1
            assert store.pruned == 1
            assert not store.contains(NS, key)
            assert store.contains(NS, "fresh-hash")
            assert store.prune(older_than=1800) == 0
            with pytest.raises(ValueError):
                store.prune(older_than=-1)
            assert store.describe()["pruned"] == 1


class TestIdempotentServing:
    def test_same_request_twice_hits_store_without_reexecution(self, store_path):
        generator = CountingGenerator()
        engine = LinxEngine(session_generator=generator)
        store = ResultStore(store_path)
        with RequestScheduler(engine, store=store, max_workers=1) as scheduler:
            request = ExploreRequest(goal="g", dataset="netflix", num_rows=60,
                                     ldx_text=LDX)
            first = scheduler.submit(request)
            scheduler.wait(first.ticket_id, timeout=120)
            assert generator.calls == 1
            second = scheduler.submit(request)
            snapshot = scheduler.wait(second.ticket_id, timeout=30)
            assert snapshot["served_from_store"] is True
            assert generator.calls == 1  # the probe: no second execution
            assert scheduler.result_payload(
                first.ticket_id
            ) == scheduler.result_payload(second.ticket_id)
        store.close()

    def test_differently_configured_engines_never_share_results(self, store_path):
        """Store keys are namespaced by the engine's config fingerprint."""
        request = ExploreRequest(goal="g", dataset="netflix", num_rows=60, ldx_text=LDX)
        store = ResultStore(store_path)
        with RequestScheduler(
            LinxEngine(cdrl_config=CdrlConfig(episodes=5)), store=store, max_workers=1
        ) as scheduler:
            ticket = scheduler.submit(request)
            scheduler.wait(ticket.ticket_id, timeout=120)
        store.close()
        # Same store file, different episode budget: must re-execute, not
        # serve the 5-episode result for a 9-episode configuration.
        reopened = ResultStore(store_path)
        with RequestScheduler(
            LinxEngine(cdrl_config=CdrlConfig(episodes=9)), store=reopened, max_workers=1
        ) as scheduler:
            ticket = scheduler.submit(request)
            snapshot = scheduler.wait(ticket.ticket_id, timeout=120)
            assert snapshot["served_from_store"] is False
            payload = scheduler.result_payload(ticket.ticket_id)
            assert payload["episodes_trained"] == 9
        assert len(reopened) == 2  # both configurations stored side by side
        reopened.close()

    def test_store_spans_scheduler_restarts(self, store_path):
        request = ExploreRequest(goal="g", dataset="netflix", num_rows=60, ldx_text=LDX)
        first_gen = CountingGenerator()
        store = ResultStore(store_path)
        with RequestScheduler(
            LinxEngine(session_generator=first_gen), store=store, max_workers=1
        ) as scheduler:
            ticket = scheduler.submit(request)
            scheduler.wait(ticket.ticket_id, timeout=120)
        store.close()
        # A fresh scheduler + store on the same file serves without running.
        second_gen = CountingGenerator()
        reopened = ResultStore(store_path)
        with RequestScheduler(
            LinxEngine(session_generator=second_gen), store=reopened, max_workers=1
        ) as scheduler:
            ticket = scheduler.submit(request)
            snapshot = scheduler.wait(ticket.ticket_id, timeout=30)
            assert snapshot["served_from_store"] is True
            assert second_gen.calls == 0
        reopened.close()


class TestReplay:
    def test_rebuild_session_from_stored_result_matches_live_trace(
        self, store_path, request_, executed
    ):
        with ResultStore(store_path) as store:
            store.put(NS, request_.canonical_hash(), executed)
            loaded = store.get(NS, request_.canonical_hash())
        table = load_dataset(
            request_.dataset, num_rows=request_.num_rows, seed=request_.dataset_seed
        )
        rebuilt = loaded.rebuild_session(table)
        live = executed.artifacts.session
        assert [node.signature() for node in rebuilt.query_nodes()] == [
            node.signature() for node in live.query_nodes()
        ]
        assert [list(op.signature()) for op in rebuilt.operations] == loaded.operations


class TestSchemaVersioning:
    def test_version_mismatch_drops_store_wholesale(self, store_path, request_, executed):
        store = ResultStore(store_path)
        store.put(NS, request_.canonical_hash(), executed)
        store.close()
        with sqlite3.connect(store_path) as connection:
            connection.execute(
                "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                (str(STORE_SCHEMA_VERSION + 1),),
            )
        reopened = ResultStore(store_path)
        assert reopened.invalidated
        assert len(reopened) == 0
        assert reopened.get(NS, request_.canonical_hash()) is None
        # ... and the store is usable again at the current version.
        reopened.put(NS, request_.canonical_hash(), executed)
        assert reopened.get(NS, request_.canonical_hash()) == executed
        reopened.close()
        third = ResultStore(store_path)
        assert not third.invalidated
        assert len(third) == 1
        third.close()

    def test_corrupt_payload_behaves_like_miss_and_is_removed(
        self, store_path, request_, executed
    ):
        store = ResultStore(store_path)
        key = request_.canonical_hash()
        store.put(NS, key, executed)
        store.close()
        with sqlite3.connect(store_path) as connection:
            connection.execute(
                "UPDATE results SET payload = '{not json' WHERE request_hash = ?",
                (key,),
            )
        reopened = ResultStore(store_path)
        assert reopened.get(NS, key) is None
        assert len(reopened) == 0  # the bad row cannot keep failing
        reopened.close()

    def test_describe_reports_counters(self, store_path, request_, executed):
        with ResultStore(store_path) as store:
            store.put(NS, request_.canonical_hash(), executed)
            store.get(NS, request_.canonical_hash())
            store.get(NS, "missing")
            summary = store.describe()
        assert summary["entries"] == 1
        assert summary["writes"] == 1
        assert summary["hits"] == 1
        assert summary["misses"] == 1
        assert summary["schema_version"] == STORE_SCHEMA_VERSION
        assert summary["invalidated"] is False


class TestLeases:
    """The compare-and-claim lease table behind exactly-once execution."""

    def test_claim_is_exclusive_until_released(self, store_path):
        with ResultStore(store_path) as store:
            assert store.claim(NS, "h1", "replica-a", 30.0)
            assert not store.claim(NS, "h1", "replica-b", 30.0)
            lease = store.lease(NS, "h1")
            assert lease["replica_id"] == "replica-a"
            assert lease["expires_at"] > lease["claimed_at"]
            # Only the holder can renew or release.
            assert not store.renew(NS, "h1", "replica-b", 30.0)
            assert store.renew(NS, "h1", "replica-a", 30.0)
            assert not store.release(NS, "h1", "replica-b")
            assert store.release(NS, "h1", "replica-a")
            assert store.lease(NS, "h1") is None
            assert store.claim(NS, "h1", "replica-b", 30.0)

    def test_reclaim_by_holder_is_idempotent(self, store_path):
        with ResultStore(store_path) as store:
            assert store.claim(NS, "h1", "replica-a", 30.0)
            # The holder re-claiming its own live lease succeeds (crash-restart
            # of the same replica must not deadlock on itself).
            assert store.claim(NS, "h1", "replica-a", 30.0)

    def test_expired_lease_is_taken_over(self, store_path):
        import time as _time

        with ResultStore(store_path) as store:
            assert store.claim(NS, "h1", "replica-a", 0.1)
            _time.sleep(0.15)
            assert store.claim(NS, "h1", "replica-b", 30.0)
            assert store.lease(NS, "h1")["replica_id"] == "replica-b"
            assert store.describe()["leases"]["takeovers"] == 1
            # An expired lease cannot be renewed back by the old holder.
            assert not store.renew(NS, "h1", "replica-a", 30.0)

    def test_release_all_drops_only_that_replica(self, store_path):
        with ResultStore(store_path) as store:
            store.claim(NS, "h1", "replica-a", 30.0)
            store.claim(NS, "h2", "replica-a", 30.0)
            store.claim(NS, "h3", "replica-b", 30.0)
            assert sorted(store.leases_held("replica-a")) == ["h1", "h2"]
            assert store.release_all("replica-a") == 2
            assert store.leases_held("replica-a") == []
            assert store.leases_held("replica-b") == ["h3"]

    def test_expire_leases_sweeps_only_stale_rows(self, store_path):
        import time as _time

        with ResultStore(store_path) as store:
            store.claim(NS, "stale", "replica-a", 0.05)
            store.claim(NS, "live", "replica-b", 30.0)
            _time.sleep(0.1)
            assert store.expire_leases() == 1
            assert store.lease(NS, "stale") is None
            assert store.lease(NS, "live") is not None

    def test_leases_survive_reopen_but_not_schema_bump(self, store_path):
        store = ResultStore(store_path)
        store.claim(NS, "h1", "replica-a", 30.0)
        store.close()
        reopened = ResultStore(store_path)
        assert reopened.lease(NS, "h1")["replica_id"] == "replica-a"
        reopened.close()
