"""Tests for the memoized execution subsystem and the exploration-loop bugfixes.

Covers the :class:`ExecutionCache` (hit/miss/eviction, fingerprint stability,
replay equivalence), the static ``can_execute`` / ``valid_mask`` validity
checks, policy-level action masking, and regressions for the three bugfixes
shipped alongside the cache (invalid-step accounting, mixed-type sorts,
strict group-aggregate execution).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dataframe import DataTable
from repro.dataframe.column import Column
from repro.dataframe.expressions import FILTER_OPERATORS, Predicate
from repro.explore import (
    ActionChoice,
    ActionSpace,
    BackOperation,
    ExecutionCache,
    ExecutionError,
    ExplorationEnvironment,
    FilterOperation,
    GroupAggOperation,
    QueryExecutor,
    RootOperation,
    session_from_operations,
)


class TestFingerprint:
    def test_equal_tables_share_fingerprint(self):
        a = DataTable({"x": [1, 2, 3], "y": ["a", "b", "c"]}, name="t")
        b = DataTable({"x": [1, 2, 3], "y": ["a", "b", "c"]}, name="t")
        assert a is not b
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_is_stable_across_calls(self, small_table):
        assert small_table.fingerprint() is small_table.fingerprint()

    def test_different_values_change_fingerprint(self):
        a = DataTable({"x": [1, 2, 3]})
        b = DataTable({"x": [1, 2, 4]})
        assert a.fingerprint() != b.fingerprint()

    def test_different_dtype_changes_fingerprint(self):
        ints = DataTable({"x": [1, 2]})
        floats = DataTable({"x": [1.0, 2.0]})
        assert ints.fingerprint() != floats.fingerprint()

    def test_derived_views_fingerprint_independently(self, small_table):
        filtered = small_table.filter(Predicate("country", "eq", "India"))
        assert filtered.fingerprint() != small_table.fingerprint()

    def test_hash_colliding_values_do_not_alias(self):
        # CPython's hash(-1) == hash(-2); a hash-based fingerprint would
        # alias these views and serve cached results for the wrong table.
        a = DataTable({"x": [-1]})
        b = DataTable({"x": [-2]})
        assert a.fingerprint() != b.fingerprint()
        cache = ExecutionCache()
        executor = QueryExecutor(cache=cache)
        op = FilterOperation("x", "le", -2)
        assert len(executor.execute(a, op)) == 0
        assert len(executor.execute(b, op)) == 1


class TestExecutionCache:
    def test_miss_then_hit_returns_same_object(self, small_table):
        cache = ExecutionCache()
        executor = QueryExecutor(cache=cache)
        op = FilterOperation("country", "eq", "India")
        first = executor.execute(small_table, op)
        second = executor.execute(small_table, op)
        assert first is second
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_hit_across_equal_views(self, small_table):
        cache = ExecutionCache()
        executor = QueryExecutor(cache=cache)
        op = GroupAggOperation("type", "count", "type")
        twin = DataTable(small_table.to_columns(), name=small_table.name)
        first = executor.execute(small_table, op)
        second = executor.execute(twin, op)
        assert first is second
        assert cache.stats.hit_rate == 0.5

    def test_cached_result_identical_to_uncached(self, small_table):
        cached = QueryExecutor(cache=ExecutionCache())
        uncached = QueryExecutor()
        for op in (
            FilterOperation("country", "eq", "India"),
            FilterOperation("duration", "gt", 90),
            GroupAggOperation("type", "count", "type"),
            GroupAggOperation("country", "mean", "duration"),
        ):
            cached.execute(small_table, op)  # prime
            hit = cached.execute(small_table, op)
            fresh = uncached.execute(small_table, op)
            assert hit == fresh
            assert hit.to_records() == fresh.to_records()

    def test_lru_eviction(self, small_table):
        cache = ExecutionCache(max_entries=2)
        executor = QueryExecutor(cache=cache)
        ops = [
            FilterOperation("country", "eq", term) for term in ("India", "US", "UK")
        ]
        for op in ops:
            executor.execute(small_table, op)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # The oldest entry (India) was evicted; re-executing misses again.
        executor.execute(small_table, ops[0])
        assert cache.stats.hits == 0

    def test_failures_are_not_cached(self, small_table):
        cache = ExecutionCache()
        executor = QueryExecutor(cache=cache)
        with pytest.raises(ExecutionError):
            executor.execute(small_table, FilterOperation("nope", "eq", "x"))
        assert len(cache) == 0

    def test_root_operation_bypasses_cache(self, small_table):
        cache = ExecutionCache()
        executor = QueryExecutor(cache=cache)
        assert executor.execute(small_table, RootOperation()) is small_table
        assert cache.stats.lookups == 0

    def test_clear_resets_entries_and_stats(self, small_table):
        cache = ExecutionCache()
        executor = QueryExecutor(cache=cache)
        op = FilterOperation("country", "eq", "US")
        executor.execute(small_table, op)
        executor.execute(small_table, op)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.lookups == 0

    def test_invalid_max_entries_rejected(self):
        with pytest.raises(ValueError):
            ExecutionCache(max_entries=0)


class TestRowBudgetBounding:
    def test_cached_rows_tracked(self, small_table):
        cache = ExecutionCache()
        executor = QueryExecutor(cache=cache)
        india = executor.execute(small_table, FilterOperation("country", "eq", "India"))
        grouped = executor.execute(small_table, GroupAggOperation("type", "count", "type"))
        assert cache.cached_rows == len(india) + len(grouped)

    def test_eviction_triggers_on_row_budget(self, small_table):
        # Entry count stays far below max_entries; only the row budget binds.
        cache = ExecutionCache(max_entries=100, max_cached_rows=8)
        executor = QueryExecutor(cache=cache)
        ops = [
            FilterOperation("country", "eq", "India"),   # 3 rows
            FilterOperation("country", "eq", "US"),      # 3 rows
            FilterOperation("country", "eq", "UK"),      # 2 rows
            FilterOperation("type", "eq", "Movie"),      # 4 rows
        ]
        for op in ops:
            executor.execute(small_table, op)
        assert cache.stats.evictions > 0
        assert cache.cached_rows <= 8
        # Oldest (India) was evicted to make room; re-executing misses again.
        executor.execute(small_table, ops[0])
        assert cache.stats.hits == 0

    def test_single_oversized_entry_is_kept(self, small_table):
        cache = ExecutionCache(max_entries=100, max_cached_rows=2)
        executor = QueryExecutor(cache=cache)
        big = executor.execute(small_table, FilterOperation("type", "eq", "Movie"))
        assert len(big) > 2
        assert len(cache) == 1  # most recent entry survives even over budget
        assert executor.execute(small_table, FilterOperation("type", "eq", "Movie")) is big

    def test_replacing_an_entry_does_not_double_count(self, small_table):
        cache = ExecutionCache(max_cached_rows=100)
        executor = QueryExecutor(cache=cache)
        op = FilterOperation("country", "eq", "India")
        result = executor.execute(small_table, op)
        cache.put(small_table, op, result)  # idempotent re-put
        assert cache.cached_rows == len(result)

    def test_clear_resets_row_accounting(self, small_table):
        cache = ExecutionCache(max_cached_rows=100)
        executor = QueryExecutor(cache=cache)
        executor.execute(small_table, FilterOperation("country", "eq", "India"))
        cache.clear()
        assert cache.cached_rows == 0

    def test_invalid_row_budget_rejected(self):
        with pytest.raises(ValueError):
            ExecutionCache(max_cached_rows=0)

    def test_describe_reports_occupancy(self, small_table):
        cache = ExecutionCache(max_entries=10, max_cached_rows=50)
        executor = QueryExecutor(cache=cache)
        executor.execute(small_table, FilterOperation("country", "eq", "India"))
        summary = cache.describe()
        assert summary["entries"] == 1
        assert summary["cached_rows"] == cache.cached_rows
        assert summary["max_entries"] == 10
        assert summary["max_cached_rows"] == 50


REPLAY_OPS = [
    FilterOperation("country", "eq", "India"),
    GroupAggOperation("type", "count", "type"),
    BackOperation(2),
    FilterOperation("country", "neq", "India"),
    GroupAggOperation("rating", "count", "rating"),
]


class TestReplayEquivalence:
    def test_cached_replay_matches_uncached(self, small_table):
        cache = ExecutionCache()
        uncached = session_from_operations(small_table, REPLAY_OPS)
        cached_first = session_from_operations(small_table, REPLAY_OPS, cache=cache)
        cached_second = session_from_operations(small_table, REPLAY_OPS, cache=cache)
        assert cache.stats.hits > 0  # the second replay was served from cache
        for session in (cached_first, cached_second):
            assert session.describe() == uncached.describe()
            for node, expected in zip(session.query_nodes(), uncached.query_nodes()):
                assert node.signature() == expected.signature()
                assert node.view == expected.view
                assert node.view.to_records() == expected.view.to_records()

    def test_environment_rollouts_identical_with_and_without_cache(self, small_table):
        choices = [
            ActionChoice(action_type=1, filter_attr=0, filter_op=0, filter_term=1),
            ActionChoice(action_type=2, group_attr=1, agg_func=0),
            ActionChoice(action_type=0),
        ]
        plain = ExplorationEnvironment(small_table, episode_length=3, enable_cache=False)
        cached = ExplorationEnvironment(small_table, episode_length=3)
        session_plain, reward_plain = plain.rollout(choices)
        session_cached, reward_cached = cached.rollout(choices)
        session_cached_2, reward_cached_2 = cached.rollout(choices)
        assert reward_plain == pytest.approx(reward_cached)
        assert reward_cached == pytest.approx(reward_cached_2)
        assert session_plain.describe() == session_cached.describe()
        for a, b in zip(session_plain.query_nodes(), session_cached_2.query_nodes()):
            assert a.view == b.view


class TestStaticValidity:
    def test_can_execute_matches_execution_outcome(self, small_table):
        """Schema-only can_execute agrees with actually running the operation."""
        executor = QueryExecutor()
        grouped = executor.execute(
            small_table, GroupAggOperation("type", "count", "type")
        )
        space = ActionSpace(small_table)
        for view in (small_table, grouped):
            for op in space.enumerate_operations():
                static = executor.can_execute(view, op)
                try:
                    executor.execute(view, op)
                except ExecutionError:
                    ran = False
                else:
                    ran = True
                assert static == ran, f"{op} on {view.columns}"

    def test_can_execute_never_runs_the_query(self, small_table, monkeypatch):
        executor = QueryExecutor()
        monkeypatch.setattr(
            DataTable,
            "filter",
            lambda *a, **k: pytest.fail("can_execute executed a filter"),
        )
        monkeypatch.setattr(
            DataTable,
            "groupby_agg",
            lambda *a, **k: pytest.fail("can_execute executed a group-by"),
        )
        assert executor.can_execute(small_table, FilterOperation("country", "eq", "x"))
        assert executor.can_execute(
            small_table, GroupAggOperation("type", "mean", "duration")
        )

    def test_back_is_not_executable(self, small_table):
        assert not QueryExecutor().can_execute(small_table, BackOperation())

    def test_valid_mask_on_raw_dataset(self, small_table):
        space = ActionSpace(small_table)
        masks = space.valid_mask(small_table)
        assert set(masks) == set(space.head_sizes())
        for head, size in space.head_sizes().items():
            assert len(masks[head]) == size
        assert masks["action_type"].all()
        assert masks["filter_attr"].all()

    def test_valid_mask_on_grouped_view(self, small_table):
        space = ActionSpace(small_table)
        grouped = small_table.groupby_agg("type", "count")
        masks = space.valid_mask(grouped)
        expected_attrs = [attr in grouped for attr in space.attributes]
        assert masks["filter_attr"].tolist() == expected_attrs
        # "duration" (the only numeric agg attribute) is gone, so numeric-only
        # aggregations are masked while count survives via the group key.
        assert not masks["agg_attr"].any()
        funcs = dict(zip(space.agg_functions, masks["agg_func"].tolist()))
        assert funcs["count"] is True
        assert funcs["sum"] is False and funcs["mean"] is False

    def test_valid_mask_agrees_with_can_execute(self, small_table):
        space = ActionSpace(small_table)
        executor = QueryExecutor()
        view = small_table.groupby_agg("type", "count")
        masks = space.valid_mask(view)
        for attr_index, attr in enumerate(space.attributes):
            op = FilterOperation(attr, "eq", space.term_for(attr, 0))
            assert bool(masks["filter_attr"][attr_index]) == executor.can_execute(view, op)


class TestPolicyMasking:
    def _policy(self, masks):
        from repro.rl import CategoricalPolicy, MultiHeadPolicyNetwork

        network = MultiHeadPolicyNetwork(
            observation_size=4, head_sizes={"a": 3, "b": 2}, hidden_sizes=(8,), seed=0
        )
        return CategoricalPolicy(
            network,
            rng=np.random.default_rng(0),
            mask_provider=lambda head: masks.get(head),
        )

    def test_masked_choices_get_zero_probability(self):
        policy = self._policy({"a": np.array([True, False, True])})
        distribution = policy.action_distribution(np.zeros(4))
        assert distribution["a"][1] == 0.0
        assert distribution["a"].sum() == pytest.approx(1.0)

    def test_masked_choices_never_sampled(self):
        policy = self._policy({"a": np.array([False, True, False])})
        for _ in range(50):
            assert policy.act(np.zeros(4)).indices["a"] == 1

    def test_short_mask_is_padded(self):
        # A 2-entry mask on a 3-entry head: the extra entry stays valid.
        policy = self._policy({"a": np.array([False, True])})
        distribution = policy.action_distribution(np.zeros(4))
        assert distribution["a"][0] == 0.0
        assert distribution["a"][2] > 0.0

    def test_degenerate_masks_are_ignored(self):
        policy = self._policy({"a": np.array([False, False, False])})
        distribution = policy.action_distribution(np.zeros(4))
        assert distribution["a"].sum() == pytest.approx(1.0)
        assert (distribution["a"] > 0).all()

    def test_gradient_update_reuses_sampling_masks(self):
        policy = self._policy({"a": np.array([True, False, True])})
        decision = policy.act(np.zeros(4))
        policy.zero_grad()
        # Must not raise and must reproduce the masked distribution.
        policy.accumulate_gradient(decision, advantage=1.0, value_target=0.0)

    def test_environment_head_mask_hook(self, small_table):
        env = ExplorationEnvironment(small_table, episode_length=2)
        env.reset()
        mask = env.head_mask("filter_attr")
        assert mask is not None and mask.all()
        assert env.head_mask("no_such_head") is None
        # Masks are memoised per session node.
        assert env.action_masks() is env.action_masks()


class TestInvalidStepAccounting:
    def test_note_invalid_step_is_public(self, small_table):
        from repro.explore import ExplorationSession

        session = ExplorationSession(small_table)
        session.note_invalid_step()
        assert session.steps_taken == 1
        assert session.operations == []
        assert session.num_queries() == 0

    def test_environment_counts_invalid_steps_via_public_api(self, small_table):
        env = ExplorationEnvironment(small_table, episode_length=2)
        env.reset()
        env.step(ActionChoice(action_type=2, group_attr=0, agg_func=0))
        # The grouped view lost the numeric column: a mean aggregation is now
        # statically invalid and must consume a step without adding a node.
        mean_index = env.action_space.agg_functions.index("mean")
        queries_before = env.session.num_queries()
        result = env.step(ActionChoice(action_type=2, group_attr=0, agg_func=mean_index))
        assert result.info["valid"] is False
        assert result.reward < 0
        assert env.session.num_queries() == queries_before
        assert env.session.steps_taken == 2


class TestSortByMixedTypes:
    def _mixed_table(self) -> DataTable:
        # Bypass dtype coercion the same way internal columnar paths can:
        # a "str" column carrying raw ints and strings from an adapter.
        col = Column.__new__(Column)
        col.name = "m"
        col.dtype = "str"
        col._values = (3, "b", 1, None, "a", 2)
        return DataTable([col])

    def test_mixed_column_sorts_without_error(self):
        table = self._mixed_table()
        ordered = [row["m"] for row in table.sort_by("m").rows()]
        # Numbers first (ascending), then strings, nulls last.
        assert ordered == [1, 2, 3, "a", "b", None]

    def test_mixed_column_sorts_descending(self):
        table = self._mixed_table()
        ordered = [row["m"] for row in table.sort_by("m", descending=True).rows()]
        assert ordered == ["b", "a", 3, 2, 1, None]

    def test_plain_numeric_sort_unchanged(self, small_table):
        ordered = [
            row["duration"] for row in small_table.sort_by("duration").rows()
        ]
        assert ordered == sorted(ordered)


class TestStrictGroupExecution:
    def test_missing_agg_attr_raises(self, small_table):
        executor = QueryExecutor()
        grouped = executor.execute(
            small_table, GroupAggOperation("type", "count", "type")
        )
        with pytest.raises(ExecutionError, match="aggregate attribute"):
            executor.execute(grouped, GroupAggOperation("type", "sum", "duration"))

    def test_missing_agg_attr_is_invalid_not_substituted(self, small_table):
        executor = QueryExecutor()
        grouped = executor.execute(
            small_table, GroupAggOperation("type", "count", "type")
        )
        assert not executor.can_execute(
            grouped, GroupAggOperation("type", "sum", "duration")
        )

    def test_count_over_group_key_keeps_bare_name(self, small_table):
        result = small_table.groupby_agg("type", "count")
        assert result.columns == ["type", "count"]

    def test_count_over_other_column_gets_explicit_name(self, small_table):
        result = small_table.groupby_agg("type", "count", "country")
        assert result.columns == ["type", "count_country"]

    def test_group_index_reused_across_aggregations(self, small_table):
        by_count = small_table.groupby_agg("type", "count")
        by_mean = small_table.groupby_agg("type", "mean", "duration")
        assert set(by_count.column("type").values) == set(
            by_mean.column("type").values
        )
        assert "type" in small_table._group_rows  # one grouping pass, memoised


class TestPredicateMaskFastPath:
    @pytest.mark.parametrize("op", FILTER_OPERATORS)
    def test_mask_matches_per_cell_evaluate(self, op):
        column = Column("x", ["10", "25", "", "apple", "Apricot", "30.5", None])
        for term in ("2", 25, "ap", "10", "e"):
            predicate = Predicate("x", op, term)
            assert list(predicate.mask(column)) == [
                predicate.evaluate(value) for value in column
            ]

    @pytest.mark.parametrize("op", FILTER_OPERATORS)
    def test_mask_matches_on_numeric_columns(self, op):
        column = Column("x", [1, 5, None, 30, -2])
        for term in (5, "5", "abc", 2.5):
            predicate = Predicate("x", op, term)
            assert list(predicate.mask(column)) == [
                predicate.evaluate(value) for value in column
            ]

    def test_nulls_never_match(self):
        column = Column("x", [None, None])
        assert list(Predicate("x", "neq", "z").mask(column)) == [False, False]

    @given(
        st.lists(
            st.one_of(
                st.none(),
                st.integers(min_value=-100, max_value=100),
                st.floats(allow_nan=False, allow_infinity=False, width=16),
                st.text(alphabet="abc015. -", max_size=6),
            ),
            max_size=12,
        ),
        st.sampled_from(FILTER_OPERATORS),
        st.one_of(st.integers(-5, 5), st.text(alphabet="abc015.", max_size=4)),
    )
    def test_mask_equals_per_cell_evaluate_property(self, values, op, term):
        """The columnar fast path is exactly evaluate() applied per cell."""
        column = Column("x", values)
        predicate = Predicate("x", op, term)
        assert list(predicate.mask(column)) == [
            predicate.evaluate(value) for value in column
        ]

    @pytest.mark.parametrize("op", FILTER_OPERATORS)
    def test_mask_matches_on_dtype_bypassed_mixed_column(self, op):
        # A str-dtype column carrying raw ints (as external adapters can
        # produce): mask must dispatch on the cell type, like evaluate().
        column = Column.__new__(Column)
        column.name = "m"
        column.dtype = "str"
        column._values = (3, "b", 1, None, "3.0", 2.5)
        for term in (3.0, "3", "b", 2):
            predicate = Predicate("m", op, term)
            assert list(predicate.mask(column)) == [
                predicate.evaluate(value) for value in column
            ]
