"""Tests for continuous cross-request inference batching.

The load-bearing property: wave composition must never change results.  A
row decided inside a shared multi-request wave is bit-identical to the same
row decided alone on its own thread, across random request mixes, seeds and
join/leave orderings.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cdrl import CdrlConfig
from repro.engine import ExploreRequest, InferenceBatcher, LinxEngine
from repro.engine.batcher import SharedExplorationContext
from repro.explore.environment import ExplorationEnvironment
from repro.explore.rollouts import DynamicVectorEnvironment
from repro.rl.network import (
    MultiHeadPolicyNetwork,
    architecture_signature,
    stacked_forward,
)
from repro.rl.policy import CategoricalPolicy

LDX = "ROOT CHILDREN <A1>\nA1 LIKE [G,.*]"

HEADS = {"action": 3, "column": 4}


def _network(seed: int) -> MultiHeadPolicyNetwork:
    return MultiHeadPolicyNetwork(
        observation_size=5, head_sizes=HEADS, hidden_sizes=(8,), seed=seed
    )


def _request(seed: int, episodes: int = 8) -> ExploreRequest:
    return ExploreRequest(
        goal="g",
        dataset="netflix",
        num_rows=60,
        ldx_text=LDX,
        seed=seed,
        episodes=episodes,
    )


def _result_key(result) -> tuple:
    """Everything result-shaped (excludes timings and cache occupancy)."""
    return (
        result.operations,
        result.utility_score,
        result.fully_compliant,
        result.structurally_compliant,
        result.episodes_trained,
        result.notebook_markdown,
        result.insights,
    )


class TestStackedForward:
    def test_matches_per_network_forward_batch_bitwise(self):
        rng = np.random.default_rng(7)
        networks = [_network(seed) for seed in range(3)]
        net_index = np.array([0, 1, 1, 2, 0, 2, 2])
        observations = rng.normal(size=(len(net_index), 5))
        probabilities, values = stacked_forward(networks, net_index, observations)
        for row, slot in enumerate(net_index):
            expected_probs, expected_values = networks[slot].forward_batch(
                observations[row : row + 1]
            )
            for name in HEADS:
                assert np.array_equal(probabilities[name][row], expected_probs[name][0])
            assert values[row] == expected_values[0]

    def test_rejects_mixed_architectures(self):
        small = _network(0)
        wide = MultiHeadPolicyNetwork(
            observation_size=5, head_sizes=HEADS, hidden_sizes=(16,), seed=0
        )
        with pytest.raises(ValueError, match="architecturally"):
            stacked_forward([small, wide], np.array([0, 1]), np.zeros((2, 5)))

    def test_signature_distinguishes_shapes_not_weights(self):
        assert architecture_signature(_network(0)) == architecture_signature(_network(9))
        wide = MultiHeadPolicyNetwork(
            observation_size=5, head_sizes=HEADS, hidden_sizes=(16,), seed=0
        )
        assert architecture_signature(_network(0)) != architecture_signature(wide)


class TestInferenceBatcherWaves:
    def test_wave_results_match_local_act_batch(self):
        """Concurrent submissions from distinct policies == each policy's
        own act_batch on the same rows with the same RNG state."""
        observations = {
            seed: np.random.default_rng(100 + seed).normal(size=(2, 5))
            for seed in range(4)
        }
        expected = {}
        for seed, obs in observations.items():
            policy = CategoricalPolicy(_network(seed), rng=np.random.default_rng(seed))
            expected[seed] = policy.act_batch(obs, [{}, {}])
        actual = {}
        with InferenceBatcher(linger_ms=20.0) as batcher:
            def worker(seed):
                policy = CategoricalPolicy(
                    _network(seed), rng=np.random.default_rng(seed)
                )
                member = batcher.attach()
                policy.act_backend = (
                    lambda obs, biases, rngs, greedy: batcher.submit(
                        member, policy, obs, biases, rngs, greedy
                    )
                )
                try:
                    actual[seed] = policy.act_batch(observations[seed], [{}, {}])
                finally:
                    batcher.detach(member)

            threads = [
                threading.Thread(target=worker, args=(seed,)) for seed in observations
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            occupancy = batcher.describe()
        for seed, decisions in expected.items():
            assert len(actual[seed]) == len(decisions)
            for mine, theirs in zip(actual[seed], decisions):
                assert mine.indices == theirs.indices
                assert mine.log_prob == theirs.log_prob
                assert mine.value == theirs.value
                assert mine.entropy == theirs.entropy
        assert occupancy["rows"] == 8
        assert occupancy["members"] == 0  # everyone detached

    def test_group_failure_reaches_only_its_submitters(self):
        with InferenceBatcher(linger_ms=5.0) as batcher:
            policy = CategoricalPolicy(_network(0))
            member = batcher.attach()
            try:
                with pytest.raises(ValueError):
                    # One bias mapping short: rejected before a wave forms.
                    batcher.submit(
                        member, policy, np.zeros((2, 5)), [{}], [policy.rng], False
                    )
                with pytest.raises(Exception):
                    # A malformed bias blows up *inside* the wave; the error
                    # must reach this submitter, not kill the wave thread.
                    batcher.submit(
                        member,
                        policy,
                        np.zeros((1, 5)),
                        [{"action": np.zeros(99)}],
                        [policy.rng],
                        False,
                    )
                # ... and the batcher still serves afterwards.
                decisions = batcher.submit(
                    member, policy, np.zeros((1, 5)), [{}], [policy.rng], False
                )
                assert len(decisions) == 1
            finally:
                batcher.detach(member)

    def test_submit_after_close_raises(self):
        batcher = InferenceBatcher()
        batcher.close()
        policy = CategoricalPolicy(_network(0))
        with pytest.raises(RuntimeError, match="shut down"):
            batcher.submit(None, policy, np.zeros((1, 5)), [{}], [policy.rng], False)


class TestDynamicVectorEnvironment:
    def _environment(self, netflix_table):
        return ExplorationEnvironment(dataset=netflix_table, episode_length=4)

    @pytest.fixture
    def netflix_table(self):
        from repro.datasets import load_dataset

        return load_dataset("netflix", num_rows=60)

    def test_attach_detach_membership(self, netflix_table):
        pool = DynamicVectorEnvironment()
        with pytest.raises(ValueError):
            pool.episode_length
        first = self._environment(netflix_table)
        second = self._environment(netflix_table)
        assert pool.attach(first) == 0
        assert pool.attach(second) == 1
        assert pool.episode_length == 4
        assert first._view_feature_memo is second._view_feature_memo
        pool.detach(first)
        assert pool.environments == [second]
        with pytest.raises(ValueError):
            pool.detach(first)

    def test_memo_pool_survives_emptiness(self, netflix_table):
        pool = DynamicVectorEnvironment()
        first = self._environment(netflix_table)
        pool.attach(first)
        memo = first._view_feature_memo
        pool.detach(first)
        later = self._environment(netflix_table)
        pool.attach(later)
        assert later._view_feature_memo is memo

    def test_mismatched_members_rejected(self, netflix_table):
        pool = DynamicVectorEnvironment()
        pool.attach(self._environment(netflix_table))
        longer = ExplorationEnvironment(dataset=netflix_table, episode_length=9)
        with pytest.raises(ValueError):
            pool.attach(longer)


class TestSharedExplorationContext:
    @pytest.fixture
    def netflix_table(self):
        from repro.datasets import load_dataset

        return load_dataset("netflix", num_rows=60)

    def test_pools_are_content_keyed(self, netflix_table):
        from repro.datasets import load_dataset

        shared = SharedExplorationContext()
        same_content = load_dataset("netflix", num_rows=60)
        assert shared.action_space(netflix_table) is shared.action_space(same_content)
        assert shared.scorer(netflix_table) is shared.scorer(same_content)
        other = load_dataset("netflix", num_rows=80)
        assert shared.action_space(netflix_table) is not shared.action_space(other)
        assert shared.lookahead_cache(LDX, 256) is shared.lookahead_cache(LDX, 256)
        assert shared.lookahead_cache(LDX, 256) is not shared.lookahead_cache(LDX, 64)
        assert shared.describe()["action_spaces"] == 2


class TestCrossRequestBitIdentity:
    """The acceptance property: batched == sequential, bit for bit."""

    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seeds=st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=4),
        episodes=st.sampled_from([4, 8]),
        stagger=st.lists(
            st.floats(min_value=0.0, max_value=0.01),
            min_size=4,
            max_size=4,
        ),
    )
    def test_batched_concurrent_matches_sequential(self, seeds, episodes, stagger):
        """Random request mixes, seeds and join orderings: payload-identical.

        Duplicate seeds are legal (two members may share nothing or a
        network-shaped twin); the stagger delays randomise which requests'
        rows actually share waves — the property must hold for every
        interleaving.
        """
        expected = {}
        sequential = LinxEngine(cdrl_config=CdrlConfig(episodes=8))
        for seed in set(seeds):
            expected[seed] = _result_key(
                sequential.explore(_request(seed, episodes=episodes))
            )
        engine = LinxEngine(
            cdrl_config=CdrlConfig(episodes=8),
            inference_batching=True,
            batch_linger_ms=2.0,
        )
        results = {}
        errors = []

        def worker(index, seed):
            import time

            time.sleep(stagger[index % len(stagger)])
            try:
                results[index] = (seed, engine.explore(_request(seed, episodes=episodes)))
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(index, seed))
            for index, seed in enumerate(seeds)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        engine.close()
        assert not errors
        assert len(results) == len(seeds)
        for seed, result in results.values():
            assert _result_key(result) == expected[seed]

    def test_batcher_coalesces_under_concurrent_load(self):
        """Occupancy: concurrent requests actually share waves (>1 mean)."""
        engine = LinxEngine(
            cdrl_config=CdrlConfig(episodes=12),
            inference_batching=True,
            batch_linger_ms=20.0,
        )
        threads = [
            threading.Thread(
                target=engine.explore, args=(_request(seed, episodes=12),)
            )
            for seed in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        occupancy = engine.batcher.describe()
        engine.close()
        assert occupancy["waves"] > 0
        assert occupancy["mean_submissions_per_wave"] > 1.0
        assert occupancy["max_wave_rows"] > 1

    def test_unbatched_stage_falls_back_cleanly(self):
        """A generator without supports_batching never sees the batcher."""
        engine = LinxEngine(
            cdrl_config=CdrlConfig(episodes=5),
            stages={"session_generator": "atena"},
            inference_batching=True,
        )
        result = engine.explore(_request(seed=0, episodes=5))
        occupancy = engine.batcher.describe()
        engine.close()
        assert result.episodes_trained == 5
        assert occupancy["waves"] == 0  # the ATENA path never submitted
