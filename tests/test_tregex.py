"""Tests for the tree substrate and the Tregex-style matcher."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tregex import (
    TreeNode,
    TreePattern,
    all_assignments,
    build_tree,
    find_assignments,
    get_relation,
    has_assignment,
    node_candidates,
    parent_child_pairs,
)


@pytest.fixture
def sample_tree() -> TreeNode:
    #        root
    #       /    \
    #      a      b
    #     / \      \
    #    c   d      e
    return build_tree(("root", [("a", ["c", "d"]), ("b", ["e"])]))


class TestTreeNode:
    def test_preorder_order(self, sample_tree):
        labels = [node.label for node in sample_tree.preorder()]
        assert labels == ["root", "a", "c", "d", "b", "e"]

    def test_size_and_height(self, sample_tree):
        assert sample_tree.size() == 6
        assert sample_tree.height() == 2

    def test_depth_and_ancestors(self, sample_tree):
        c = sample_tree.children[0].children[0]
        assert c.depth() == 2
        assert [node.label for node in c.ancestors()] == ["a", "root"]

    def test_descendants(self, sample_tree):
        assert len(sample_tree.descendants()) == 5

    def test_copy_is_structurally_equal_but_independent(self, sample_tree):
        clone = sample_tree.copy()
        assert clone.structurally_equal(sample_tree)
        clone.new_child("extra")
        assert not clone.structurally_equal(sample_tree)

    def test_parent_child_pairs(self, sample_tree):
        assert len(parent_child_pairs(sample_tree)) == 5

    def test_render_contains_all_labels(self, sample_tree):
        rendered = sample_tree.render()
        for label in ("root", "a", "b", "c", "d", "e"):
            assert label in rendered

    def test_root_and_index_nodes(self, sample_tree):
        leaf = sample_tree.children[1].children[0]
        assert leaf.root() is sample_tree
        mapping = sample_tree.index_nodes()
        assert mapping[0] is sample_tree


class TestRelations:
    def test_child_relation(self, sample_tree):
        child = get_relation("children")
        a = sample_tree.children[0]
        assert child.holds(sample_tree, a)
        assert not child.holds(a, sample_tree)

    def test_descendant_relation(self, sample_tree):
        descendant = get_relation("descendants")
        c = sample_tree.children[0].children[0]
        assert descendant.holds(sample_tree, c)
        assert not descendant.holds(c, sample_tree)

    def test_sibling_relation(self, sample_tree):
        sibling = get_relation("sibling")
        a, b = sample_tree.children
        assert sibling.holds(a, b)
        assert not sibling.holds(a, a)

    def test_unknown_relation_raises(self):
        with pytest.raises(KeyError):
            get_relation("cousin")


class TestMatcher:
    def test_simple_child_pattern(self, sample_tree):
        pattern = TreePattern()
        pattern.add_node("R", lambda label: label == "root")
        pattern.add_node("X", lambda label: label == "a")
        pattern.add_constraint("R", "children", "X")
        assert has_assignment(sample_tree, pattern)

    def test_descendant_pattern(self, sample_tree):
        pattern = TreePattern()
        pattern.add_node("R", lambda label: label == "root")
        pattern.add_node("X", lambda label: label == "e")
        pattern.add_constraint("R", "descendants", "X")
        assert has_assignment(sample_tree, pattern)

    def test_unsatisfiable_pattern(self, sample_tree):
        pattern = TreePattern()
        pattern.add_node("X", lambda label: label == "zzz")
        assert not has_assignment(sample_tree, pattern)

    def test_all_assignments_count(self, sample_tree):
        pattern = TreePattern()
        pattern.add_node("R", lambda label: label == "root")
        pattern.add_node("X")  # any node except those already used
        pattern.add_constraint("R", "children", "X")
        assignments = all_assignments(sample_tree, pattern, initial={"R": sample_tree})
        assert len(assignments) == 2  # a and b

    def test_distinct_nodes_constraint(self, sample_tree):
        pattern = TreePattern()
        pattern.add_node("X", lambda label: label == "a")
        pattern.add_node("Y", lambda label: label == "a")
        assert not has_assignment(sample_tree, pattern)

    def test_arity_constraint(self, sample_tree):
        pattern = TreePattern()
        pattern.add_node("X")
        pattern.add_arity("X", 2)
        candidates = node_candidates(sample_tree, pattern, "X", {})
        assert {node.label for node in candidates} == {"root", "a"}

    def test_initial_assignment_respected(self, sample_tree):
        pattern = TreePattern()
        pattern.add_node("R")
        pattern.add_node("X")
        pattern.add_constraint("R", "children", "X")
        b = sample_tree.children[1]
        assignments = list(find_assignments(sample_tree, pattern, initial={"R": b}))
        assert len(assignments) == 1
        assert assignments[0]["X"].label == "e"

    def test_inconsistent_initial_assignment(self, sample_tree):
        pattern = TreePattern()
        pattern.add_node("R")
        pattern.add_node("X")
        pattern.add_constraint("R", "children", "X")
        c = sample_tree.children[0].children[0]
        assert not has_assignment(sample_tree, pattern, initial={"R": c, "X": sample_tree})


@given(st.integers(min_value=1, max_value=8))
def test_property_chain_tree_size_and_height(depth):
    root = TreeNode(0)
    node = root
    for i in range(1, depth):
        node = node.new_child(i)
    assert root.size() == depth
    assert root.height() == depth - 1
    assert len(list(root.preorder())) == depth
