"""Tests for the distributed training tier (checkpoints, fleet, registry)."""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdrl.agent import CdrlConfig
from repro.engine import (
    ExploreRequest,
    LinxEngine,
    RequestValidationError,
)
from repro.engine.registry import KIND_SESSION_GENERATOR, StageRegistry
from repro.rl.trainer import TrainerConfig, TrainingHistory
from repro.train.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    TrainingCheckpoint,
    TrainSpec,
    deserialize_buffer,
    serialize_buffer,
)
from repro.train.learner import FleetLearner
from repro.train.registry import (
    PolicyRegistry,
    RegisteredPolicySessionGenerator,
    config_fingerprint,
)

LDX = """
ROOT CHILDREN <A1,A2>
A1 LIKE [F,delay_reason,eq,weather] and CHILDREN {B1}
B1 LIKE [G,(?<Y>.*),mean,(?<Z>.*)]
A2 LIKE [F,delay_reason,neq,weather] and CHILDREN {B2}
B2 LIKE [G,(?<Y>.*),mean,(?<Z>.*)]
"""


def _spec(episodes: int = 6, seed: int = 3, **config_overrides) -> TrainSpec:
    config = CdrlConfig(
        episodes=episodes, episode_length=3, seed=seed, **config_overrides
    )
    return TrainSpec(dataset="flights", ldx_text=LDX, num_rows=120, config=config)


def _history_fields(history: TrainingHistory) -> dict:
    """History minus cache_stats (fleet and single-process cache differently)."""
    payload = history.to_dict()
    return {
        key: payload[key]
        for key in ("episode_returns", "episode_steps", "greedy_returns")
    }


# -- satellite: history round-trip ---------------------------------------------------
class TestTrainingHistoryRoundTrip:
    def test_round_trip_preserves_everything(self):
        history = TrainingHistory(
            episode_returns=[1.0, -0.5, 2.25],
            episode_steps=[4, 3, 5],
            greedy_returns=[(2, 1.75)],
            cache_stats={"hits": 3, "misses": 1},
        )
        restored = TrainingHistory.from_dict(history.to_dict())
        assert restored == history
        assert restored.greedy_returns == [(2, 1.75)]

    def test_round_trip_of_empty_history(self):
        assert TrainingHistory.from_dict(TrainingHistory().to_dict()) == (
            TrainingHistory()
        )

    def test_to_dict_is_json_primitive(self):
        import json

        history = TrainingHistory(episode_returns=[0.5], episode_steps=[2],
                                  greedy_returns=[(0, 0.5)])
        assert TrainingHistory.from_dict(
            json.loads(json.dumps(history.to_dict()))
        ) == history


# -- satellite: structured config validation -----------------------------------------
class TestConfigValidation:
    def test_valid_configs_produce_no_errors(self):
        assert TrainerConfig().validate() == []
        assert CdrlConfig().validate() == []

    def test_trainer_config_reports_each_bad_field(self):
        errors = TrainerConfig(
            episodes=0, learning_rate=0.0, discount=1.5, batch_episodes=-1
        ).validate()
        fields = {error.field for error in errors}
        assert fields == {"episodes", "learning_rate", "discount", "batch_episodes"}

    def test_trainer_check_raises_validation_error(self):
        with pytest.raises(RequestValidationError) as excinfo:
            TrainerConfig(learning_rate=-1.0).check()
        assert any(
            error.field == "learning_rate" for error in excinfo.value.errors
        )

    def test_cdrl_config_prefixes_nested_trainer_fields(self):
        errors = CdrlConfig(
            episode_length=0, trainer=TrainerConfig(discount=0.0)
        ).validate()
        fields = {error.field for error in errors}
        assert "episode_length" in fields
        assert "trainer.discount" in fields

    def test_agent_construction_rejects_invalid_config(self):
        spec = _spec()
        bad = TrainSpec(
            dataset=spec.dataset,
            ldx_text=spec.ldx_text,
            num_rows=spec.num_rows,
            config=CdrlConfig(episodes=0),
        )
        with pytest.raises(RequestValidationError):
            bad.build_agent()


# -- checkpoint serialization --------------------------------------------------------
class TestCheckpointSerialization:
    def test_buffer_round_trip(self):
        spec = _spec(episodes=2)
        learner = FleetLearner(spec, num_actors=1, envs_per_actor=1, workers="inline")
        with learner:
            learner.train()
        # Re-collect one episode to get a real buffer through the actor path.
        from repro.train.actor import collect_chunk

        records = collect_chunk(
            learner.fleet.payload,
            learner.trainer.policy.network.export_state(),
            0,
            1,
        )
        rows = records[0]["buffer"]
        buffer = deserialize_buffer(rows)
        assert serialize_buffer(buffer) == rows
        assert len(buffer.transitions) == len(rows)
        decision = buffer.transitions[0].decision
        assert decision.probabilities == {}
        assert decision.observation.flags.writeable

    def test_blob_round_trip(self):
        spec = _spec(episodes=4)
        with FleetLearner(
            spec, num_actors=1, envs_per_actor=1, workers="inline"
        ) as learner:
            learner.collect_until(2)
            checkpoint = learner.checkpoint()
        restored = TrainingCheckpoint.from_blob(checkpoint.to_blob())
        assert restored == checkpoint

    def test_unknown_schema_version_rejected(self):
        spec = _spec(episodes=2)
        with FleetLearner(
            spec, num_actors=1, envs_per_actor=1, workers="inline"
        ) as learner:
            blob = learner.checkpoint().to_blob()
        payload = pickle.loads(blob)
        payload["schema_version"] = CHECKPOINT_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema version"):
            TrainingCheckpoint.from_blob(pickle.dumps(payload, protocol=4))

    def test_save_and_load_file(self, tmp_path):
        spec = _spec(episodes=2)
        path = tmp_path / "run.ckpt"
        with FleetLearner(
            spec,
            num_actors=1,
            envs_per_actor=1,
            workers="inline",
            checkpoint_path=path,
        ) as learner:
            learner.collect_until(2)
        assert TrainingCheckpoint.load(path).episodes_completed == 2

    def test_spec_payload_round_trip(self):
        spec = _spec(episodes=7, seed=11)
        assert TrainSpec.from_payload(spec.to_payload()) == spec


# -- tentpole: fleet bit-identity ----------------------------------------------------
class TestFleetBitIdentity:
    def test_two_actors_match_single_process_two_envs(self):
        spec = _spec()
        baseline = spec.build_agent(num_envs=2)
        baseline_history = baseline.trainer.train()
        with FleetLearner(
            spec, num_actors=2, envs_per_actor=1, workers="inline"
        ) as learner:
            result = learner.train()
            assert learner.trainer.policy.network.export_state() == (
                baseline.trainer.policy.network.export_state()
            )
            assert learner.trainer.optimizer.export_state(
                learner.trainer.policy.parameters()
            ) == baseline.trainer.optimizer.export_state(
                baseline.trainer.policy.parameters()
            )
        assert _history_fields(result.history) == _history_fields(baseline_history)

    def test_actor_and_env_split_is_operational_only(self):
        spec = _spec(episodes=4)
        states = []
        for num_actors, envs_per_actor in ((1, 4), (2, 2), (4, 1)):
            with FleetLearner(
                spec,
                num_actors=num_actors,
                envs_per_actor=envs_per_actor,
                workers="inline",
            ) as learner:
                learner.train()
                states.append(learner.trainer.policy.network.export_state())
        assert states[0] == states[1] == states[2]

    def test_wave_size_validation(self):
        spec = _spec(episodes=2)
        with FleetLearner(
            spec, num_actors=1, envs_per_actor=1, workers="inline"
        ) as learner:
            with pytest.raises(ValueError, match="exceeds"):
                learner.fleet.collect_wave(
                    learner.trainer.policy.network.export_state(), 0, 2
                )


# -- tentpole: kill-and-resume -------------------------------------------------------
class TestKillAndResume:
    def test_resume_matches_uninterrupted_run(self, tmp_path):
        spec = _spec()
        baseline = spec.build_agent(num_envs=2)
        baseline_history = baseline.trainer.train()

        path = tmp_path / "run.ckpt"
        with FleetLearner(
            spec,
            num_actors=2,
            envs_per_actor=1,
            workers="inline",
            checkpoint_path=path,
        ) as partial:
            stopped = partial.collect_until(3)
        assert 0 < stopped < spec.config.episodes

        resumed = FleetLearner.from_checkpoint(path, workers="inline")
        with resumed:
            result = resumed.train()
            assert resumed.trainer.policy.network.export_state() == (
                baseline.trainer.policy.network.export_state()
            )
            assert resumed.trainer.optimizer.export_state(
                resumed.trainer.policy.parameters()
            ) == baseline.trainer.optimizer.export_state(
                baseline.trainer.policy.parameters()
            )
        assert _history_fields(result.history) == _history_fields(baseline_history)

    def test_resume_from_completion_checkpoint_is_a_no_op(self, tmp_path):
        spec = _spec(episodes=4)
        path = tmp_path / "run.ckpt"
        with FleetLearner(
            spec,
            num_actors=2,
            envs_per_actor=1,
            workers="inline",
            checkpoint_path=path,
        ) as learner:
            learner.train()
            final = learner.trainer.policy.network.export_state()
        resumed = FleetLearner.from_checkpoint(path, workers="inline")
        with resumed:
            resumed.train()
            assert resumed.trainer.policy.network.export_state() == final

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=4),
           stop_after=st.integers(min_value=1, max_value=5))
    def test_resume_property_over_seeds_and_stop_points(
        self, tmp_path_factory, seed, stop_after
    ):
        """Stopping at any wave boundary of any seed resumes bit-identically."""
        spec = _spec(seed=seed)
        path = tmp_path_factory.mktemp("ckpt") / "run.ckpt"
        with FleetLearner(
            spec,
            num_actors=2,
            envs_per_actor=1,
            workers="inline",
            checkpoint_path=path,
        ) as uninterrupted:
            uninterrupted.train()
            expected = uninterrupted.trainer.policy.network.export_state()

        with FleetLearner(
            spec,
            num_actors=2,
            envs_per_actor=1,
            workers="inline",
            checkpoint_path=path,
        ) as partial:
            partial.collect_until(stop_after)
        resumed = FleetLearner.from_checkpoint(path, workers="inline")
        with resumed:
            resumed.train()
            assert resumed.trainer.policy.network.export_state() == expected


# -- the policy registry -------------------------------------------------------------
class TestPolicyRegistry:
    def _trained_learner(self, episodes: int = 4) -> FleetLearner:
        learner = FleetLearner(
            _spec(episodes=episodes), num_actors=1, envs_per_actor=2, workers="inline"
        )
        with learner:
            learner.train()
        return learner

    def test_publish_versions_and_get(self, tmp_path):
        learner = self._trained_learner()
        with PolicyRegistry(tmp_path / "pol.sqlite") as registry:
            assert learner.publish(registry, "alpha", metrics={"utility": 1.0}) == 1
            assert learner.publish(registry, "alpha") == 2
            assert registry.versions("alpha") == [1, 2]
            assert len(registry) == 2
            record = registry.get("alpha", 1)
            assert record["metrics"] == {"utility": 1.0}
            assert record["dataset"] == "flights"
            assert record["promoted"] is True  # version 1 auto-promoted
            assert isinstance(record["checkpoint"], TrainingCheckpoint)
            assert record["config_fingerprint"] == config_fingerprint(
                learner.spec.config
            )

    def test_promotion_moves_the_default(self, tmp_path):
        learner = self._trained_learner()
        with PolicyRegistry(tmp_path / "pol.sqlite") as registry:
            learner.publish(registry, "alpha")
            learner.publish(registry, "alpha")
            assert registry.get("alpha")["version"] == 1
            registry.promote("alpha", 2)
            assert registry.get("alpha")["version"] == 2
            assert registry.get("alpha", 1)["promoted"] is False
            with pytest.raises(KeyError, match="no version"):
                registry.promote("alpha", 9)

    def test_missing_policy_raises(self, tmp_path):
        with PolicyRegistry(tmp_path / "pol.sqlite") as registry:
            with pytest.raises(KeyError):
                registry.get("ghost")
            assert registry.versions("ghost") == []

    @pytest.mark.parametrize("name", ["", "has space", "cdrl:x", "-lead", "a/b"])
    def test_invalid_names_rejected(self, tmp_path, name):
        learner = self._trained_learner(episodes=2)
        with PolicyRegistry(tmp_path / "pol.sqlite") as registry:
            with pytest.raises(ValueError, match="invalid policy name"):
                learner.publish(registry, name)

    def test_names_are_case_folded(self, tmp_path):
        learner = self._trained_learner(episodes=2)
        with PolicyRegistry(tmp_path / "pol.sqlite") as registry:
            assert learner.publish(registry, "Alpha") == 1
            assert registry.versions("ALPHA") == [1]
            assert registry.get("alpha")["name"] == "alpha"

    def test_attach_registers_versioned_and_alias_stages(self, tmp_path):
        learner = self._trained_learner()
        stage_registry = StageRegistry()
        with PolicyRegistry(tmp_path / "pol.sqlite") as registry:
            learner.publish(registry, "alpha")
            names = registry.attach(stage_registry)
            assert set(names) == {"cdrl:alpha-v1", "cdrl:alpha"}
            listed = stage_registry.describe()[KIND_SESSION_GENERATOR]
            assert "cdrl:alpha-v1" in listed and "cdrl:alpha" in listed
            # Publishing after attach self-registers the new version.
            learner.publish(registry, "alpha")
            listed = stage_registry.describe()[KIND_SESSION_GENERATOR]
            assert "cdrl:alpha-v2" in listed

    def test_schema_version_mismatch_drops_store(self, tmp_path):
        path = tmp_path / "pol.sqlite"
        learner = self._trained_learner(episodes=2)
        with PolicyRegistry(path) as registry:
            learner.publish(registry, "alpha")
        import sqlite3

        with sqlite3.connect(path) as conn:
            conn.execute(
                "UPDATE meta SET value = '0' WHERE key = 'schema_version'"
            )
        with PolicyRegistry(path) as registry:
            assert registry.invalidated is True
            assert len(registry) == 0


class TestServingRegisteredPolicies:
    def test_engine_serves_registered_policy_by_name(self, tmp_path):
        learner = FleetLearner(
            _spec(), num_actors=2, envs_per_actor=1, workers="inline"
        )
        with learner:
            learner.train()
            registry_path = tmp_path / "pol.sqlite"
            with PolicyRegistry(registry_path) as registry:
                learner.publish(registry, "served")
        engine = LinxEngine(policy_registry_path=registry_path)
        try:
            result = engine.explore(
                ExploreRequest(
                    goal="weather delays",
                    dataset="flights",
                    num_rows=120,
                    ldx_text=LDX,
                    episodes=3,
                    seed=3,
                    stages={"session_generator": "cdrl:served-v1"},
                )
            )
            assert result.stage_names["session_generator"] == "cdrl:served-v1"
            assert result.operations
            assert result.episodes_trained == learner.total_episodes
        finally:
            engine.policy_registry.close()

    def test_generator_rejects_mismatched_table(self, tmp_path):
        learner = FleetLearner(
            _spec(episodes=2), num_actors=1, envs_per_actor=1, workers="inline"
        )
        with learner:
            learner.train()
            with PolicyRegistry(tmp_path / "pol.sqlite") as registry:
                learner.publish(registry, "flightsonly")
                generator = RegisteredPolicySessionGenerator(registry, "flightsonly")
                from repro.datasets.registry import load_dataset

                other = load_dataset("netflix", num_rows=60)
                with pytest.raises(ValueError, match="does not fit table"):
                    generator.generate(other, LDX)

    def test_generator_honours_request_episode_budget(self, tmp_path):
        learner = FleetLearner(
            _spec(episodes=2), num_actors=1, envs_per_actor=1, workers="inline"
        )
        with learner:
            learner.train()
            with PolicyRegistry(tmp_path / "pol.sqlite") as registry:
                learner.publish(registry, "budgeted")
                generator = RegisteredPolicySessionGenerator(registry, "budgeted")
                table = learner.spec.load_table()
                attempts = []
                outcome = generator.generate(
                    table,
                    LDX,
                    episodes=2,
                    on_episode=lambda episode, *_: attempts.append(episode),
                )
                assert attempts == [0, 1]
                assert outcome.episodes_trained == 2  # trained episodes, from history
