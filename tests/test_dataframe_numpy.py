"""Tests for the numpy-backed columnar core.

Covers the buffer representation (typed arrays + null masks), missing-value
semantics across the vectorised paths (property tests comparing
``Predicate.mask`` / ``groupby_agg`` against pure-Python references),
mixed-type object-backed columns at the numpy boundary (the CSV loader must
not silently coerce ints to strings), buffer-hashed fingerprints, and the
negative-result caching added to :class:`ExecutionCache`.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dataframe import DataTable, Predicate, read_delimited_text
from repro.dataframe.aggregates import AGG_FUNCTIONS, apply_aggregation
from repro.dataframe.column import Column
from repro.dataframe.errors import AggregationError
from repro.dataframe.expressions import FILTER_OPERATORS, combine_and, combine_or
from repro.explore import (
    ExecutionCache,
    ExecutionError,
    ExplorationEnvironment,
    FilterOperation,
    GroupAggOperation,
    QueryExecutor,
)
from repro.explore.cache import ThreadSafeExecutionCache

# -- cell strategies: ints, floats (NaN included), strings, None -------------------------

_CELLS = st.one_of(
    st.none(),
    st.integers(min_value=-1000, max_value=1000),
    st.floats(allow_infinity=False, width=32),  # NaN allowed: must read as null
    st.text(alphabet="abcXY015. -", max_size=6),
)


def _reference_groupby(keys, values, func):
    """Pure-Python group-and-aggregate: first-appearance order, nulls skipped."""
    rows: dict[object, list] = {}
    order: list = []
    for key, value in zip(keys, values):
        if key is None:
            continue
        if key not in rows:
            rows[key] = []
            order.append(key)
        rows[key].append(value)
    return {key: apply_aggregation(func, rows[key]) for key in order}


class TestBuffers:
    def test_int_column_buffers(self):
        data, mask = Column("x", [1, None, 3]).buffers()
        assert data.dtype == np.int64
        assert list(mask) == [False, True, False]
        assert data[0] == 1 and data[2] == 3

    def test_float_column_buffers_use_nan_filler(self):
        data, mask = Column("x", [1.5, None]).buffers()
        assert data.dtype == np.float64
        assert math.isnan(data[1]) and bool(mask[1])

    def test_str_column_buffers_are_unicode(self):
        data, mask = Column("x", ["a", None, "bc"]).buffers()
        assert data.dtype.kind == "U"
        assert data[1] == "" and bool(mask[1])

    def test_buffers_are_read_only(self):
        data, mask = Column("x", [1, 2]).buffers()
        with pytest.raises(ValueError):
            data[0] = 9
        with pytest.raises(ValueError):
            mask[0] = True

    def test_values_round_trip_with_nulls(self):
        column = Column("x", [1, None, 3])
        assert column.values == (1, None, 3)
        assert list(column) == [1, None, 3]

    def test_nan_and_empty_string_become_null(self):
        assert Column("x", [1.0, float("nan")]).values == (1.0, None)
        assert Column("x", ["a", ""]).values == ("a", None)

    def test_nul_characters_round_trip_via_object_fallback(self):
        column = Column("x", ["a\x00", "b"])
        assert column.values == ("a\x00", "b")
        assert column.is_object_backed

    def test_take_and_rename_share_buffer_semantics(self):
        column = Column("x", [10, None, 30])
        taken = column.take(np.array([2, 0]))
        assert taken.values == (30, 10)
        assert column.rename("y").values == column.values


class TestMissingValueSemantics:
    @given(
        st.lists(_CELLS, max_size=25),
        st.sampled_from(FILTER_OPERATORS),
        st.one_of(st.integers(-5, 5), st.text(alphabet="abX015.", max_size=4)),
    )
    def test_vectorised_mask_matches_pure_python_reference(self, cells, op, term):
        """Nulls (None and NaN alike) never match, exactly as evaluate() says."""
        column = Column("x", cells)
        predicate = Predicate("x", op, term)
        mask = predicate.mask(column)
        assert isinstance(mask, np.ndarray)
        assert list(mask) == predicate.mask_reference(column.values)

    @given(
        st.lists(st.one_of(st.none(), st.sampled_from(["k1", "k2", "k3"])), max_size=25),
        st.lists(_CELLS, max_size=25),
        st.sampled_from(["count", "nunique"]),
    )
    def test_groupby_matches_reference_on_any_values(self, keys, cells, func):
        length = min(len(keys), len(cells))
        table = DataTable({"k": keys[:length], "v": cells[:length]})
        expected = _reference_groupby(
            table.column("k").values, table.column("v").values, func
        )
        result = table.groupby_agg("k", func, "v")
        got = {row["k"]: row[result.columns[-1]] for row in result.rows()}
        assert got == expected

    @given(
        st.lists(st.one_of(st.none(), st.sampled_from(["k1", "k2"])), max_size=25),
        st.lists(
            st.one_of(st.none(), st.floats(allow_infinity=False, width=16)),
            max_size=25,
        ),
        st.sampled_from(AGG_FUNCTIONS),
    )
    def test_numeric_groupby_matches_reference(self, keys, cells, func):
        """NaN/None values are skipped by every aggregate, pre/post numpy."""
        length = min(len(keys), len(cells))
        table = DataTable({"k": keys[:length], "v": cells[:length]})
        if func in ("sum", "mean") and not table.column("v").is_numeric:
            # All-null columns infer as str; numeric-only aggregates reject
            # them up front (unchanged pre-numpy contract).
            with pytest.raises(AggregationError):
                table.groupby_agg("k", func, "v")
            return
        expected = _reference_groupby(
            table.column("k").values, table.column("v").values, func
        )
        result = table.groupby_agg("k", func, "v")
        got = {row["k"]: row[result.columns[-1]] for row in result.rows()}
        assert set(got) == set(expected)
        for key, value in expected.items():
            if isinstance(value, float):
                assert got[key] == pytest.approx(value, nan_ok=True)
            else:
                assert got[key] == value

    def test_null_group_keys_are_skipped(self):
        table = DataTable({"k": ["a", None, "a", "b"], "v": [1, 2, None, 4]})
        result = table.groupby_agg("k", "count", "v")
        counts = {row["k"]: row["count_v"] for row in result.rows()}
        assert counts == {"a": 1, "b": 1}

    def test_filter_never_keeps_null_rows(self):
        table = DataTable({"v": [1, None, -1]})
        for op in ("eq", "neq", "le", "ge", "contains"):
            kept = table.filter(Predicate("v", op, 1))
            assert None not in kept.column("v").values

    def test_sort_places_nulls_last_both_directions(self):
        table = DataTable({"v": [3.0, None, 1.0, None, 2.0]})
        assert list(table.sort_by("v").column("v")) == [1.0, 2.0, 3.0, None, None]
        assert list(table.sort_by("v", descending=True).column("v")) == [
            3.0,
            2.0,
            1.0,
            None,
            None,
        ]

    def test_combine_masks_accept_lists_and_arrays(self):
        a = np.array([True, True, False])
        b = [True, False, True]
        assert list(combine_and([a, b])) == [True, False, False]
        assert list(combine_or([a, b])) == [True, True, True]


class TestMixedTypeColumns:
    MIXED_CSV = "id,code\n1,7\n2,x\n3,9\n4,\n"

    def test_loader_preserves_ints_in_mixed_columns(self):
        table = read_delimited_text(self.MIXED_CSV)
        code = table.column("code")
        assert code.dtype == "str"
        assert code.is_object_backed
        # Regression: ints must stay ints, not become "7"/"9" strings.
        assert code.values == (7, "x", 9, None)

    def test_mixed_column_sort_is_type_aware(self):
        table = read_delimited_text(self.MIXED_CSV)
        assert list(table.sort_by("code").column("code")) == [7, 9, "x", None]
        assert list(table.sort_by("code", descending=True).column("code")) == [
            "x",
            9,
            7,
            None,
        ]

    def test_mixed_column_mask_dispatches_per_cell(self):
        table = read_delimited_text(self.MIXED_CSV)
        predicate = Predicate("code", "eq", 7)
        assert list(predicate.mask(table.column("code"))) == [True, False, False, False]
        assert len(table.filter(predicate)) == 1

    def test_mixed_column_groupby_falls_back(self):
        table = DataTable([Column.from_raw("m", [1, "a", 1, None, "a"])])
        result = table.groupby_agg("m", "count")
        counts = {row["m"]: row["count"] for row in result.rows()}
        assert counts == {"1": 2, "a": 2}  # result keys re-enter the coercing path

    def test_mixed_min_max_raises_aggregation_error(self):
        table = DataTable(
            [Column.from_raw("m", [1, "a"]), Column("g", ["x", "x"])]
        )
        with pytest.raises(AggregationError):
            table.groupby_agg("g", "min", "m")

    def test_pure_columns_are_not_object_backed_on_load(self):
        table = read_delimited_text("a,b,c\n1,2.5,x\n3,,y\n")
        assert not table.column("a").is_object_backed
        assert not table.column("b").is_object_backed
        assert not table.column("c").is_object_backed


class TestFingerprintBuffers:
    def test_equal_tables_share_fingerprint_across_construction_paths(self):
        base = DataTable({"s": ["aa", "b", "aa", "cc"], "v": [1, 2, 3, 4]})
        taken = base.head(4)  # buffers sliced from the parent (wider unicode)
        rebuilt = DataTable(base.to_columns())
        assert taken.fingerprint() == rebuilt.fingerprint()

    def test_empty_views_share_fingerprint(self):
        base = DataTable({"s": ["aaaa", "bb"], "v": [1, 2]})
        a = base.filter(Predicate("s", "eq", "zzz"))
        b = base.filter(Predicate("v", "gt", 99))
        assert a.fingerprint() == b.fingerprint()

    def test_null_position_changes_fingerprint(self):
        a = DataTable({"x": [None, 0]})
        b = DataTable({"x": [0, None]})
        assert a.fingerprint() != b.fingerprint()

    def test_mixed_object_columns_fingerprint_by_value(self):
        a = DataTable([Column.from_raw("m", [1, "1"])])
        b = DataTable([Column.from_raw("m", ["1", 1])])
        assert a.fingerprint() != b.fingerprint()

    def test_object_backed_all_string_column_matches_typed_fingerprint(self):
        # Equal tables share a fingerprint regardless of construction path.
        typed = DataTable([Column("c", ["a", None, "bb"])])
        raw = DataTable([Column.from_raw("c", ["a", None, "bb"])])
        assert typed == raw
        assert typed.fingerprint() == raw.fingerprint()


class TestInt64Boundaries:
    def test_huge_ints_survive_exactly_via_object_storage(self):
        big = 2**70
        column = Column("x", [big, 7, None], dtype="int")
        assert column.values == (big, 7, None)
        assert column.is_object_backed
        assert column.sum() == big + 7
        assert column.min() == 7 and column.max() == big

    def test_int64_range_sums_do_not_wrap(self):
        column = Column("x", [2**62, 2**62, 2**62])
        assert not column.is_object_backed
        assert column.sum() == 3 * 2**62  # > int64 max; must not wrap

    def test_grouped_huge_int_sum_is_exact(self):
        table = DataTable({"k": ["a", "a", "b"], "v": [2**53 + 1, 2**53 + 1, 1]})
        result = table.groupby_agg("k", "sum", "v")
        sums = {row["k"]: row["sum_v"] for row in result.rows()}
        assert sums == {"a": 2**54 + 2, "b": 1}

    def test_grouped_sum_exact_when_only_the_total_overflows_float64(self):
        # Every element is below 2**52 but the group total exceeds 2**53.
        value = 3 * 2**50 + 1
        table = DataTable({"k": ["a"] * 9, "v": [value] * 9})
        result = table.groupby_agg("k", "sum", "v")
        assert result.rows()[0]["sum_v"] == 9 * value

    def test_sum_exact_at_int64_min(self):
        # np.abs(INT64_MIN) wraps; the magnitude guard must not rely on it.
        column = Column("x", [-(2**63), -1], dtype="int")
        assert column.sum() == -(2**63) - 1

    def test_infinity_in_int_column_raises_like_python_int(self):
        with pytest.raises(OverflowError):
            Column("x", [float("inf"), 1], dtype="int")


class TestNegativeResultCaching:
    def _failing_setup(self):
        # Static validity passes (both columns exist) but execution fails at
        # runtime: min() over a mixed-type object column.
        table = DataTable(
            [Column.from_raw("m", [1, "a", 2]), Column("g", ["x", "x", "y"])]
        )
        cache = ExecutionCache()
        executor = QueryExecutor(cache=cache)
        operation = GroupAggOperation("g", "min", "m")
        assert executor.can_execute(table, operation)
        return table, cache, executor, operation

    def test_repeated_failure_served_from_cache(self):
        table, cache, executor, operation = self._failing_setup()
        with pytest.raises(ExecutionError) as first:
            executor.execute(table, operation)
        assert cache.negative_entries == 1
        assert cache.stats.negative_hits == 0
        with pytest.raises(ExecutionError) as second:
            executor.execute(table, operation)
        assert str(second.value) == str(first.value)
        assert cache.stats.negative_hits == 1
        # Only the first attempt counted a (result-map) miss.
        assert cache.stats.misses == 1

    def test_missing_column_failures_cached_too(self, request):
        table = DataTable({"a": [1, 2]})
        cache = ExecutionCache()
        executor = QueryExecutor(cache=cache)
        operation = FilterOperation("nope", "eq", "x")
        for _ in range(3):
            with pytest.raises(ExecutionError):
                executor.execute(table, operation)
        assert cache.stats.negative_hits == 2
        assert len(cache) == 0  # failures never occupy result entries

    def test_negative_entries_bounded_lru(self):
        table = DataTable({"a": [1, 2]})
        cache = ExecutionCache(max_error_entries=2)
        executor = QueryExecutor(cache=cache)
        for name in ("x", "y", "z"):
            with pytest.raises(ExecutionError):
                executor.execute(table, FilterOperation(name, "eq", 1))
        assert cache.negative_entries == 2
        # The oldest failure (x) was evicted: re-raising re-executes.
        with pytest.raises(ExecutionError):
            executor.execute(table, FilterOperation("x", "eq", 1))
        assert cache.stats.negative_hits == 0

    def test_describe_and_clear_cover_negative_map(self):
        table, cache, executor, operation = self._failing_setup()
        with pytest.raises(ExecutionError):
            executor.execute(table, operation)
        summary = cache.describe()
        assert summary["negative_entries"] == 1
        assert summary["negative_hits"] == 0
        assert summary["max_error_entries"] == cache.max_error_entries
        cache.clear()
        assert cache.negative_entries == 0
        assert cache.describe()["negative_entries"] == 0

    def test_thread_safe_cache_exposes_negative_api(self):
        table, _, _, operation = self._failing_setup()
        cache = ThreadSafeExecutionCache(max_error_entries=4)
        executor = QueryExecutor(cache=cache)
        with pytest.raises(ExecutionError):
            executor.execute(table, operation)
        with pytest.raises(ExecutionError):
            executor.execute(table, operation)
        assert cache.stats.negative_hits == 1

    def test_invalid_max_error_entries_rejected(self):
        with pytest.raises(ValueError):
            ExecutionCache(max_error_entries=0)

    def test_environment_counts_cached_failures_once(self):
        # End-to-end: an environment sharing a cache does not re-execute
        # runtime failures; its stats dict carries the negative counters.
        from repro.datasets import load_dataset

        env = ExplorationEnvironment(load_dataset("netflix", num_rows=50))
        stats = env.cache_stats()
        assert "negative_hits" in stats


class TestObservationFeaturisation:
    def test_observe_matches_manual_featurisation(self):
        table = DataTable(
            {"c": ["a", "a", None, "b"], "v": [1.0, None, 3.0, 4.0]},
            name="t",
        )
        env = ExplorationEnvironment(table, episode_length=4)
        obs = env.reset()
        assert obs.dtype == np.float64
        assert len(obs) == env.observation_size()
        assert obs[0] == pytest.approx(1.0)  # full view: log-size ratio is 1
        assert obs[1] == pytest.approx(1.0)
        # Column "c": present, 2 distinct / 4 rows, 1 null / 4 rows.
        assert obs[4:7] == pytest.approx([1.0, 0.5, 0.25])
        assert obs[7:10] == pytest.approx([1.0, 0.75, 0.25])

    def test_observation_is_freshly_writable_each_step(self):
        table = DataTable({"v": [1, 2, 3]})
        env = ExplorationEnvironment(table, episode_length=2)
        first = env.reset()
        first[0] = 123.0  # callers may scribble on their copy
        second = env.observe()
        assert second[0] != 123.0
