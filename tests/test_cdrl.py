"""Tests for the CDRL engine: compliance rewards, snippets, spec-aware policy, agent."""

from __future__ import annotations

import pytest

from repro.cdrl import (
    CdrlConfig,
    ComplianceRewardConfig,
    ComplianceRewardStrategy,
    LinxCdrlAgent,
    SNIPPET_ACTION_INDEX,
    SNIPPET_HEAD,
    SnippetLibrary,
    SpecificationAwarePolicy,
    VARIANT_NAMES,
    derive_snippets,
    end_of_session_reward,
    variant_config,
)
from repro.explore import ActionSpace
from repro.ldx import parse_ldx, verify


class TestEndOfSessionReward:
    def test_fully_compliant_gets_high_reward(self, compliant_session, comparison_query):
        config = ComplianceRewardConfig()
        reward = end_of_session_reward(compliant_session, comparison_query, config)
        assert reward == config.full_compliance_reward

    def test_structural_violation_is_penalised(self, noncompliant_session, comparison_query):
        config = ComplianceRewardConfig()
        reward = end_of_session_reward(noncompliant_session, comparison_query, config)
        assert reward < 0

    def test_graded_beats_binary_for_partial_sessions(
        self, noncompliant_session, comparison_query
    ):
        config = ComplianceRewardConfig()
        graded = end_of_session_reward(
            noncompliant_session, comparison_query, config, graded=True
        )
        binary = end_of_session_reward(
            noncompliant_session, comparison_query, config, graded=False
        )
        assert graded > binary

    def test_structure_only_session_gets_operational_credit(
        self, small_table, comparison_query
    ):
        from repro.explore import (
            BackOperation,
            FilterOperation,
            GroupAggOperation,
            session_from_operations,
        )

        session = session_from_operations(
            small_table,
            [
                FilterOperation("type", "eq", "Movie"),
                GroupAggOperation("rating", "count", "rating"),
                BackOperation(2),
                FilterOperation("type", "neq", "Movie"),
                GroupAggOperation("rating", "count", "rating"),
            ],
        )
        config = ComplianceRewardConfig()
        reward = end_of_session_reward(session, comparison_query, config)
        assert 0 <= reward < config.full_compliance_reward


class TestComplianceStrategy:
    def test_strategy_summary(self, small_table, comparison_query, compliant_session):
        strategy = ComplianceRewardStrategy(comparison_query, episode_length=6)
        summary = strategy.compliance_summary(compliant_session)
        assert summary["full"] is True
        assert summary["structural"] is True
        assert summary["operational_ratio"] == 1.0

    def test_episode_end_reward_sign(self, comparison_query, compliant_session, noncompliant_session):
        strategy = ComplianceRewardStrategy(comparison_query, episode_length=6)
        assert strategy.on_episode_end(compliant_session) > 0
        assert strategy.on_episode_end(noncompliant_session) < strategy.on_episode_end(
            compliant_session
        )


class TestSnippets:
    def test_snippets_derived_per_operational_spec(self, comparison_query):
        snippets = derive_snippets(comparison_query)
        assert len(snippets) == 4
        kinds = {snippet.kind for snippet in snippets}
        assert kinds == {"F", "G"}

    def test_filter_snippet_fixed_and_free_fields(self, comparison_query):
        snippets = derive_snippets(comparison_query)
        filter_snippets = [s for s in snippets if s.kind == "F"]
        assert all(s.fixed["attr"] == "country" for s in filter_snippets)
        assert all("term" in s.free for s in filter_snippets)

    def test_disjunction_expands_to_multiple_snippets(self):
        query = parse_ldx("ROOT CHILDREN <A>\nA LIKE [G,country,SUM|AVG,.*]")
        snippets = derive_snippets(query)
        assert {s.fixed["agg_func"] for s in snippets} == {"SUM", "AVG"}

    def test_library_extends_vocabulary(self, small_table):
        query = parse_ldx("ROOT CHILDREN <A>\nA LIKE [F,country,eq,Narnia]")
        space = ActionSpace(small_table)
        library = SnippetLibrary(query, space)
        assert space.index_of_term("country", "Narnia") is not None
        choice = library.to_action_choice(0, {})
        operation = space.decode(choice)
        assert operation.signature() == ("F", "country", "eq", "Narnia")

    def test_library_example_operations_match_specs(self, small_table, comparison_query):
        space = ActionSpace(small_table)
        library = SnippetLibrary(comparison_query, space)
        operations = [library.example_operation(i) for i in range(len(library))]
        assert any(op.signature()[0] == "F" and op.signature()[2] == "eq" for op in operations)
        assert any(op.signature()[0] == "G" for op in operations)


class TestSpecAwarePolicy:
    def test_head_layout_includes_snippet_heads(self, small_table, comparison_query):
        space = ActionSpace(small_table)
        policy = SpecificationAwarePolicy(10, space, comparison_query, hidden_sizes=(8,))
        assert SNIPPET_HEAD in policy.network.head_sizes
        assert policy.network.head_sizes["action_type"] == 4

    def test_snippet_action_biased_up(self, small_table, comparison_query):
        import numpy as np

        space = ActionSpace(small_table)
        policy = SpecificationAwarePolicy(10, space, comparison_query, hidden_sizes=(8,))
        distribution = policy.action_distribution(np.zeros(10))
        assert distribution["action_type"][SNIPPET_ACTION_INDEX] > 1.0 / 4.0

    def test_indices_to_choice_snippet_path(self, small_table, comparison_query):
        space = ActionSpace(small_table)
        policy = SpecificationAwarePolicy(10, space, comparison_query, hidden_sizes=(8,))
        choice = policy.indices_to_choice({"action_type": SNIPPET_ACTION_INDEX, SNIPPET_HEAD: 0})
        operation = space.decode(choice)
        assert operation.signature()[0] in ("F", "G")

    def test_indices_to_choice_plain_path(self, small_table, comparison_query):
        space = ActionSpace(small_table)
        policy = SpecificationAwarePolicy(10, space, comparison_query, hidden_sizes=(8,))
        choice = policy.indices_to_choice({"action_type": 0})
        assert space.decode(choice).kind == "B"


class TestAgentAndAblation:
    def test_agent_with_guidance_produces_compliant_session(self, small_table):
        ldx = (
            "ROOT CHILDREN <B1,B2>\n"
            "B1 LIKE [F,country,eq,(?<X>.*)] and CHILDREN {C1}\n"
            "C1 LIKE [G,(?<Y>.*),count,.*]\n"
            "B2 LIKE [F,country,neq,(?<X>.*)] and CHILDREN {C2}\n"
            "C2 LIKE [G,(?<Y>.*),count,.*]\n"
        )
        agent = LinxCdrlAgent(small_table, ldx, config=CdrlConfig(episodes=40, seed=2))
        result = agent.run()
        assert result.fully_compliant
        assert verify(result.session.to_tree(), agent.query)
        assert result.session.num_queries() >= 4

    def test_agent_episode_length_covers_specification(self, small_table, comparison_query):
        agent = LinxCdrlAgent(small_table, comparison_query, config=CdrlConfig(episodes=1))
        assert agent.episode_length >= comparison_query.minimal_session_steps()

    def test_variant_configs_flags(self):
        binary = variant_config("Binary Reward Only")
        assert not binary.graded_eos_reward
        assert not binary.immediate_reward
        assert not binary.specification_aware_network
        full = variant_config("LINX-CDRL (Full)")
        assert full.graded_eos_reward and full.immediate_reward
        assert full.specification_aware_network
        without_nn = variant_config("W/O Spec. Aware NN")
        assert without_nn.immediate_reward and not without_nn.specification_aware_network

    def test_unknown_variant_raises(self):
        with pytest.raises(ValueError):
            variant_config("Mystery Variant")

    def test_variant_names_match_table4(self):
        assert VARIANT_NAMES == (
            "Binary Reward Only",
            "Binary+Imm. Reward",
            "W/O Spec. Aware NN",
            "LINX-CDRL (Full)",
        )
