"""Tests for the evaluation metrics: lev2, xTED and compliance reports."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ldx import parse_ldx
from repro.metrics import (
    compliance_report,
    lev2_score,
    levenshtein,
    normalised_levenshtein,
    normalised_tree_edit_distance,
    operation_label_distance,
    tree_edit_distance,
    two_way_levenshtein,
    xted_score,
)
from repro.tregex import build_tree

GOLD = """
ROOT CHILDREN <A1,A2>
A1 LIKE [F,country,eq,(?<X>.*)] and CHILDREN {B1}
B1 LIKE [G,(?<Y>.*),count,.*]
A2 LIKE [F,country,neq,(?<X>.*)] and CHILDREN {B2}
B2 LIKE [G,(?<Y>.*),count,.*]
"""

SIMILAR = """
ROOT CHILDREN <A1,A2>
A1 LIKE [F,country,eq,(?<V>.*)] and CHILDREN {B1}
B1 LIKE [G,(?<W>.*),count,.*]
A2 LIKE [F,country,neq,(?<V>.*)] and CHILDREN {B2}
B2 LIKE [G,(?<W>.*),count,.*]
"""

DIFFERENT = """
ROOT CHILDREN <A1>
A1 LIKE [G,rating,mean,duration]
"""


class TestLevenshtein:
    def test_identical_strings(self):
        assert levenshtein("abc", "abc") == 0

    def test_single_edit(self):
        assert levenshtein("kitten", "sitten") == 1

    def test_empty_strings(self):
        assert levenshtein("", "abc") == 3
        assert normalised_levenshtein("", "") == 0.0

    @given(st.text(max_size=15), st.text(max_size=15))
    def test_property_symmetry_and_bounds(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)
        assert 0 <= normalised_levenshtein(a, b) <= 1

    @given(st.text(max_size=12))
    def test_property_identity(self, a):
        assert levenshtein(a, a) == 0


class TestLev2:
    def test_identical_queries_score_one(self):
        assert lev2_score(GOLD, GOLD) == pytest.approx(1.0)

    def test_continuity_renaming_scores_high(self):
        assert lev2_score(GOLD, SIMILAR) > 0.9

    def test_different_query_scores_lower(self):
        assert lev2_score(GOLD, DIFFERENT) < lev2_score(GOLD, SIMILAR)

    def test_unparsable_prediction_scores_zero(self):
        assert lev2_score(GOLD, "NOT LDX AT ALL (((") == 0.0
        assert lev2_score(GOLD, None) == 0.0

    def test_two_way_distance_symmetric_enough(self):
        gold = parse_ldx(GOLD)
        other = parse_ldx(DIFFERENT)
        assert 0 <= two_way_levenshtein(gold, other) <= 1

    def test_bad_gold_raises(self):
        with pytest.raises(ValueError):
            lev2_score("not ldx (((", GOLD)


class TestTreeEdit:
    def test_identical_trees_distance_zero(self):
        tree = build_tree(("r", [("a", []), ("b", [])]))
        assert tree_edit_distance(tree, tree.copy()) == 0.0

    def test_insertion_costs_one(self):
        small = build_tree(("r", [("a", [])]))
        larger = build_tree(("r", [("a", []), ("b", [])]))
        assert tree_edit_distance(small, larger) == pytest.approx(1.0)

    def test_label_distance_kind_mismatch(self):
        assert operation_label_distance(("F", "country"), ("G", "country")) == 1.0

    def test_label_distance_parameter_mismatch(self):
        distance = operation_label_distance(
            ("F", "country", "eq", "India"), ("F", "country", "eq", "US")
        )
        assert 0 < distance < 1

    def test_normalised_distance_bounds(self):
        a = build_tree(("r", [("a", []), ("b", [("c", [])])]))
        b = build_tree(("r", []))
        assert 0 <= normalised_tree_edit_distance(a, b) <= 1

    def test_xted_identical_is_one(self):
        assert xted_score(GOLD, GOLD) == pytest.approx(1.0)

    def test_xted_masks_continuity_names(self):
        assert xted_score(GOLD, SIMILAR) == pytest.approx(1.0)

    def test_xted_penalises_structure_difference(self):
        assert xted_score(GOLD, DIFFERENT) < 0.8

    def test_xted_unparsable_is_zero(self):
        assert xted_score(GOLD, "((((") == 0.0


class TestComplianceReport:
    def test_compliant_session_report(self, compliant_session, comparison_query):
        report = compliance_report(compliant_session, comparison_query)
        assert report.fully_compliant
        assert report.relevance_score() == 1.0

    def test_noncompliant_session_report(self, noncompliant_session, comparison_query):
        report = compliance_report(noncompliant_session, comparison_query)
        assert not report.fully_compliant
        assert 0 <= report.relevance_score() < 1.0

    def test_relevance_monotone_in_compliance(
        self, compliant_session, noncompliant_session, comparison_query
    ):
        full = compliance_report(compliant_session, comparison_query).relevance_score()
        partial = compliance_report(noncompliant_session, comparison_query).relevance_score()
        assert full > partial
