"""Tests for the lazy query planner: canonical plans, fused execution, plan caching."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataframe.column import Column
from repro.dataframe.table import DataTable
from repro.datasets import load_dataset
from repro.explore.action_space import ActionChoice
from repro.explore.cache import PLAN_KEY_TAG, ExecutionCache
from repro.explore.diskcache import TieredExecutionCache
from repro.explore.environment import ExplorationEnvironment
from repro.explore.executor import ExecutionError, QueryExecutor
from repro.explore.operations import (
    BackOperation,
    FilterOperation,
    GroupAggOperation,
    Operation,
    RootOperation,
    operation_from_signature,
)
from repro.explore.session import session_from_operations
from repro.plan import (
    BackNode,
    FilterNode,
    GroupNode,
    LogicalPlan,
    RootNode,
    canonicalize,
    node_from_operation,
    operation_from_node,
    plan_for_node,
    plan_from_operations,
    plan_from_session,
    plan_of,
)


@pytest.fixture()
def flights():
    return load_dataset("flights", num_rows=300)


def toy_table() -> DataTable:
    """Small table covering nulls and an object-backed mixed-type column."""
    return DataTable(
        [
            Column.from_raw("cat", ["a", "b", "a", "c", "b", "a", "c", "a"]),
            Column.from_raw("num", [1, 7, 2, None, 5, 2, 9, 4]),
            Column.from_raw("mixed", [1, "two", None, 3.5, "four", 1, "two", None]),
        ],
        name="toy",
    )


F_CAT_A = FilterOperation("cat", "eq", "a")
F_CAT_NEQ_B = FilterOperation("cat", "neq", "b")
F_NUM_GT = FilterOperation("num", "gt", 2)
F_NUM_LE = FilterOperation("num", "le", 5)
G_COUNT = GroupAggOperation("cat", "count", "cat")
G_MEAN = GroupAggOperation("cat", "mean", "num")
G_NUNIQUE = GroupAggOperation("cat", "nunique", "mixed")


class TestPlanNodes:
    def test_node_signatures_match_operations(self):
        pairs = [
            (FilterNode("cat", "eq", "a"), F_CAT_A),
            (GroupNode("cat", "count", "cat"), G_COUNT),
            (BackNode(2), BackOperation(2)),
            (RootNode(), RootOperation()),
        ]
        for node, operation in pairs:
            assert node.signature() == operation.signature()

    def test_filter_node_normalises_operator_aliases(self):
        assert FilterNode("cat", "==", "a") == FilterNode("cat", "eq", "a")
        assert plan_of([FilterNode("cat", "==", "a")]).fingerprint() == plan_of(
            [FilterNode("cat", "eq", "a")]
        ).fingerprint()

    def test_group_node_normalises_aggregate_aliases(self):
        assert GroupNode("cat", "avg", "num") == GroupNode("cat", "mean", "num")

    def test_fingerprint_is_stable_and_discriminating(self):
        plan = plan_of([FilterNode("cat", "eq", "a"), GroupNode("cat", "count", "cat")])
        same = plan_of([FilterNode("cat", "eq", "a"), GroupNode("cat", "count", "cat")])
        other = plan_of([FilterNode("cat", "eq", "b"), GroupNode("cat", "count", "cat")])
        assert plan.fingerprint() == same.fingerprint()
        assert plan.fingerprint() != other.fingerprint()
        # Length-prefixed encoding: field boundaries cannot be confused.
        left = plan_of([FilterNode("cat", "eq", "ab")])
        right = plan_of([FilterNode("cat", "eq", "a")])
        assert left.fingerprint() != right.fingerprint()

    def test_fingerprint_not_part_of_equality(self):
        plan = plan_of([FilterNode("cat", "eq", "a")])
        fresh = plan_of([FilterNode("cat", "eq", "a")])
        plan.fingerprint()  # memoises into the instance dict
        assert plan == fresh
        assert hash(plan) == hash(fresh)

    def test_node_operation_round_trip(self):
        for operation in (F_CAT_A, G_MEAN, BackOperation(3), RootOperation()):
            assert operation_from_node(node_from_operation(operation)) == operation

    def test_unknown_conversions_raise(self):
        with pytest.raises(ValueError):
            node_from_operation(object())
        with pytest.raises(ValueError):
            operation_from_node(object())


class TestCanonicalize:
    def test_commuted_adjacent_filters_share_canonical_form(self):
        forward = plan_from_operations([F_CAT_A, F_NUM_GT])
        reversed_ = plan_from_operations([F_NUM_GT, F_CAT_A])
        assert canonicalize(forward) == canonicalize(reversed_)
        assert canonicalize(forward).fingerprint() == canonicalize(reversed_).fingerprint()

    def test_duplicate_predicates_merge(self):
        noisy = plan_from_operations([F_CAT_A, F_NUM_GT, F_CAT_A])
        clean = plan_from_operations([F_CAT_A, F_NUM_GT])
        assert canonicalize(noisy) == canonicalize(clean)

    def test_group_nodes_are_commute_barriers(self):
        left = plan_from_operations([F_CAT_A, G_COUNT, F_NUM_GT])
        right = plan_from_operations([F_NUM_GT, G_COUNT, F_CAT_A])
        assert canonicalize(left) != canonicalize(right)

    def test_back_pairs_prune(self):
        undone = plan_from_operations([F_CAT_A, F_NUM_GT, BackOperation(1), G_COUNT])
        direct = plan_from_operations([F_CAT_A, G_COUNT])
        assert canonicalize(undone) == canonicalize(direct)

    def test_back_clamps_at_root(self):
        overshoot = plan_from_operations([F_CAT_A, BackOperation(9), F_NUM_GT])
        assert canonicalize(overshoot) == canonicalize(plan_from_operations([F_NUM_GT]))

    def test_canonicalize_is_idempotent(self):
        plan = plan_from_operations([F_NUM_GT, F_CAT_A, BackOperation(1), F_NUM_LE, G_MEAN])
        once = canonicalize(plan)
        assert canonicalize(once) == once

    def test_prefixes_of_canonical_plans_are_canonical(self):
        plan = canonicalize(
            plan_from_operations([F_NUM_GT, F_CAT_A, G_COUNT, F_NUM_LE])
        )
        for cut in range(len(plan) + 1):
            prefix = LogicalPlan(plan.steps[:cut])
            assert canonicalize(prefix) == prefix


class TestFusedExecution:
    AGGS = ["count", "sum", "mean", "min", "max", "nunique"]

    def _eager(self, table, operations):
        return session_from_operations(table, operations, use_plans=False).current.view

    def test_fused_filter_group_bit_identical_across_aggregates(self, flights):
        executor = QueryExecutor(cache=ExecutionCache())
        for agg in self.AGGS:
            operations = [
                FilterOperation("distance", "gt", 300),
                FilterOperation("airline", "neq", "AA"),
                GroupAggOperation("airline", agg, "departure_delay"),
            ]
            fused = executor.execute_plan(flights, plan_from_operations(operations))
            eager = self._eager(flights, operations)
            assert fused == eager
            assert fused.fingerprint() == eager.fingerprint()

    def test_fused_trailing_filter_chain_bit_identical(self, flights):
        operations = [
            FilterOperation("distance", "gt", 300),
            FilterOperation("airline", "neq", "AA"),
            FilterOperation("month", "le", 9),
        ]
        executor = QueryExecutor(cache=ExecutionCache())
        fused = executor.execute_plan(flights, plan_from_operations(operations))
        eager = self._eager(flights, operations)
        assert fused == eager
        assert fused.fingerprint() == eager.fingerprint()

    def test_fused_empty_selection_matches_eager(self, flights):
        operations = [
            FilterOperation("distance", "gt", 10**9),
            GroupAggOperation("airline", "count", "airline"),
        ]
        executor = QueryExecutor(cache=ExecutionCache())
        fused = executor.execute_plan(flights, plan_from_operations(operations))
        eager = self._eager(flights, operations)
        assert fused == eager
        assert len(fused) == 0

    def test_fusion_counter_increments(self, flights):
        cache = ExecutionCache()
        executor = QueryExecutor(cache=cache)
        operations = [
            FilterOperation("distance", "gt", 300),
            GroupAggOperation("airline", "count", "airline"),
        ]
        executor.execute_plan(flights, plan_from_operations(operations))
        assert cache.stats.fusion_count == 1
        assert cache.describe()["fusion_count"] == 1

    def test_plan_with_missing_column_raises_execution_error(self, flights):
        executor = QueryExecutor(cache=ExecutionCache())
        plan = plan_from_operations(
            [GroupAggOperation("airline", "count", "airline"), FilterOperation("distance", "gt", 1)]
        )
        with pytest.raises(ExecutionError):
            executor.execute_plan(flights, plan)


OPERATION_VOCAB = [
    F_CAT_A,
    F_CAT_NEQ_B,
    F_NUM_GT,
    F_NUM_LE,
    FilterOperation("mixed", "eq", "two"),
    G_COUNT,
    G_MEAN,
    G_NUNIQUE,
    GroupAggOperation("num", "count", "num"),
    BackOperation(1),
    BackOperation(2),
]


class TestPlanEagerEquivalence:
    """Property: the fused plan path is value-identical to the eager reference."""

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.sampled_from(OPERATION_VOCAB), min_size=1, max_size=8))
    def test_execute_plan_matches_eager_replay(self, operations):
        table = toy_table()
        try:
            reference = session_from_operations(
                table, operations, use_plans=False
            ).current.view
        except ExecutionError:
            # The eager replay failed mid-chain.  The lazy path only fails
            # when the failing operation survives canonicalization (a later
            # back step may legitimately discard it), so assert raise-parity
            # on back-free chains only.
            if not any(isinstance(op, BackOperation) for op in operations):
                with pytest.raises(ExecutionError):
                    QueryExecutor(cache=ExecutionCache()).execute_plan(
                        table, plan_from_operations(operations)
                    )
            return
        fused = QueryExecutor(cache=ExecutionCache()).execute_plan(
            table, plan_from_operations(operations)
        )
        assert fused.columns == reference.columns
        assert fused.to_records() == reference.to_records()
        assert fused.fingerprint() == reference.fingerprint()

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.sampled_from(OPERATION_VOCAB), min_size=1, max_size=8))
    def test_incremental_step_path_matches_eager_replay(self, operations):
        table = toy_table()

        def replay(use_plans):
            try:
                session = session_from_operations(
                    table, operations, cache=ExecutionCache(), use_plans=use_plans
                )
            except ExecutionError:
                return None
            return session

        eager = replay(False)
        planned = replay(True)
        # The step path executes exactly the operations the eager path does
        # (no laziness), so raise-parity holds unconditionally here.
        assert (eager is None) == (planned is None)
        if eager is None:
            return
        eager_nodes = eager.query_nodes()
        planned_nodes = planned.query_nodes()
        assert len(eager_nodes) == len(planned_nodes)
        for a, b in zip(eager_nodes, planned_nodes):
            assert a.view == b.view
            assert a.view.fingerprint() == b.view.fingerprint()
            assert b.plan is not None


class TestPlanCacheSharing:
    COMMUTED = (
        [FilterOperation("airline", "eq", "AA"), FilterOperation("distance", "gt", 500)],
        [FilterOperation("distance", "gt", 500), FilterOperation("airline", "eq", "AA")],
    )

    def test_commuted_filters_share_memory_entry(self, flights):
        cache = ExecutionCache()
        executor = QueryExecutor(cache=cache)
        forward, reversed_ = self.COMMUTED
        first = executor.execute_plan(flights, plan_from_operations(forward))
        assert cache.stats.plan_hits == 0
        second = executor.execute_plan(flights, plan_from_operations(reversed_))
        assert cache.stats.plan_hits == 1
        assert second is first  # one shared entry, not a re-execution
        key_a = ExecutionCache.plan_key_for(
            flights, canonicalize(plan_from_operations(forward))
        )
        key_b = ExecutionCache.plan_key_for(
            flights, canonicalize(plan_from_operations(reversed_))
        )
        assert key_a == key_b
        assert key_a[1][0] == PLAN_KEY_TAG
        assert cache.plan_entries == cache.describe()["plan_entries"] > 0

    def test_commuted_filters_share_disk_entry(self, flights, tmp_path):
        db_path = tmp_path / "plan_cache.sqlite"
        forward, reversed_ = self.COMMUTED
        cold = TieredExecutionCache(db_path)
        first = QueryExecutor(cache=cold).execute_plan(
            flights, plan_from_operations(forward)
        )
        cold.close()  # flushes the write-behind buffer

        warm = TieredExecutionCache(db_path)
        second = QueryExecutor(cache=warm).execute_plan(
            flights, plan_from_operations(reversed_)
        )
        summary = warm.describe()
        assert summary["disk_hits"] >= 1
        assert summary["plan_hits"] >= 1
        assert second == first
        assert second.fingerprint() == first.fingerprint()
        warm.close()

    def test_commuted_replays_share_entry_through_step_path(self, flights):
        cache = ExecutionCache()
        forward, reversed_ = self.COMMUTED
        a = session_from_operations(flights, forward, cache=cache)
        entries_after_first = len(cache)
        b = session_from_operations(flights, reversed_, cache=cache)
        assert cache.stats.plan_hits >= 1
        # The combined two-filter view is shared; only the differing
        # single-filter prefix is added by the second replay.
        assert len(cache) == entries_after_first + 1
        assert a.current.view == b.current.view

    def test_environments_share_plan_entries_for_commuted_episodes(self, flights):
        cache = ExecutionCache()
        env_a = ExplorationEnvironment(flights, episode_length=2, cache=cache)
        env_b = ExplorationEnvironment(flights, episode_length=2, cache=cache)
        first = ActionChoice(action_type=1, filter_attr=0)  # 1 == "filter"
        second = ActionChoice(action_type=1, filter_attr=1)
        env_a.reset()
        assert all(env_a.step(choice).info["valid"] for choice in (first, second))
        hits_before = cache.stats.plan_hits
        env_b.reset()
        assert all(env_b.step(choice).info["valid"] for choice in (second, first))
        assert cache.stats.plan_hits >= hits_before + 1
        assert env_a.session.current.view == env_b.session.current.view

    def test_snapshot_counters_has_plan_fields(self):
        cache = ExecutionCache()
        counters = cache.snapshot_counters()
        assert len(counters) == 5


class TestOperationSignatureRoundTrip:
    CASES: list[Operation] = [
        RootOperation(),
        RootOperation(dataset_name="flights"),
        FilterOperation("airline", "eq", "AA"),
        FilterOperation("distance", ">=", 500),
        GroupAggOperation("airline", "avg", "departure_delay"),
        GroupAggOperation("month", "count", "month"),
        BackOperation(),
        BackOperation(steps=3),
    ]

    def test_every_operation_round_trips_through_its_signature(self):
        for operation in self.CASES:
            restored = operation_from_signature(operation.signature())
            assert restored.signature() == operation.signature()
            assert restored.kind == operation.kind

    def test_signatures_are_hashable_and_stable(self):
        for operation in self.CASES:
            signature = operation.signature()
            assert hash(signature) == hash(operation.signature())
            assert {signature: 1}[operation.signature()] == 1
            assert all(isinstance(field, str) for field in signature)

    def test_back_signature_strict_arity(self):
        assert operation_from_signature(["B"]) == BackOperation()
        assert operation_from_signature(["B", "2"]) == BackOperation(2)
        with pytest.raises(ValueError):
            operation_from_signature(["B", "2", "extra"])
        with pytest.raises(ValueError):
            operation_from_signature(["B", "two"])

    def test_filter_and_group_arity_errors(self):
        with pytest.raises(ValueError):
            operation_from_signature(["F", "airline", "eq"])
        with pytest.raises(ValueError):
            operation_from_signature(["G", "airline", "count", "airline", "extra"])
        with pytest.raises(ValueError):
            operation_from_signature(["Z", "nope"])
        with pytest.raises(ValueError):
            operation_from_signature([])


class TestSessionPlanThreading:
    def test_session_nodes_carry_canonical_plans(self, flights):
        operations = [
            FilterOperation("airline", "eq", "AA"),
            FilterOperation("distance", "gt", 500),
            BackOperation(1),
            GroupAggOperation("month", "count", "month"),
        ]
        session = session_from_operations(flights, operations, cache=ExecutionCache())
        assert session.root.plan == LogicalPlan(())
        leaf = session.current
        assert leaf.plan == canonicalize(plan_from_operations(operations))
        assert plan_from_session(session) == leaf.plan
        assert plan_for_node(leaf) == leaf.plan

    def test_eager_sessions_still_work_without_plans(self, flights):
        operations = [FilterOperation("airline", "eq", "AA")]
        session = session_from_operations(
            flights, operations, cache=ExecutionCache(), use_plans=False
        )
        assert session.current.plan is None
        assert plan_for_node(session.current) == canonicalize(
            plan_from_operations(operations)
        )
