"""Tests for the name-based stage registry and declarative stage selection."""

from __future__ import annotations

import pytest

from repro.cdrl import CdrlConfig
from repro.dataframe import DataTable
from repro.engine import (
    KIND_SESSION_GENERATOR,
    STAGE_KINDS,
    STAGE_REGISTRY,
    ExploreRequest,
    LinxEngine,
    RequestValidationError,
    SessionOutcome,
    StageContext,
    StageRegistry,
    register_stage_factory,
)
from repro.explore import session_from_operations
from repro.explore.operations import FilterOperation, GroupAggOperation

LDX = "ROOT CHILDREN <A1>\nA1 LIKE [G,.*]"


@pytest.fixture
def netflix_mini() -> DataTable:
    return DataTable(
        {
            "country": ["India", "US", "US", "India", "UK", "US", "India", "UK"],
            "type": ["Movie"] * 4 + ["TV Show"] * 4,
            "duration": [100, 50, 90, 110, 45, 95, 120, 105],
        },
        name="netflix",
    )


def _request(**overrides) -> ExploreRequest:
    base = dict(goal="explore", dataset="netflix", ldx_text=LDX, episodes=6, seed=0)
    base.update(overrides)
    return ExploreRequest(**base)


class TestRegistryBasics:
    def test_builtins_registered_per_kind(self):
        names = STAGE_REGISTRY.describe()
        assert set(names) == set(STAGE_KINDS)
        assert names["spec_deriver"] == ["nl2pd2ldx"]
        assert names["session_generator"] == ["atena", "cdrl"]
        assert names["notebook_renderer"] == ["markdown"]
        assert names["insight_extractor"] == ["mechanical"]

    def test_register_rejects_duplicates_unless_replace(self):
        registry = StageRegistry()
        registry.register(KIND_SESSION_GENERATOR, "mine", lambda ctx: "v1")
        with pytest.raises(ValueError):
            registry.register(KIND_SESSION_GENERATOR, "mine", lambda ctx: "v2")
        registry.register(KIND_SESSION_GENERATOR, "mine", lambda ctx: "v2", replace=True)
        context = StageContext(llm_client=None, fewshot_bank=lambda: None, cdrl_config=None)
        assert registry.create(KIND_SESSION_GENERATOR, "mine", context) == "v2"

    def test_register_rejects_unknown_kind_and_blank_name(self):
        registry = StageRegistry()
        with pytest.raises(ValueError):
            registry.register("no_such_kind", "x", lambda ctx: None)
        with pytest.raises(ValueError):
            registry.register(KIND_SESSION_GENERATOR, "  ", lambda ctx: None)

    def test_unknown_name_raises_structured_error(self):
        context = StageContext(llm_client=None, fewshot_bank=lambda: None, cdrl_config=None)
        with pytest.raises(RequestValidationError) as excinfo:
            STAGE_REGISTRY.create(KIND_SESSION_GENERATOR, "nope", context)
        assert "stages.session_generator" in excinfo.value.fields()

    def test_names_are_case_insensitive(self):
        registry = StageRegistry()
        registry.register(KIND_SESSION_GENERATOR, "MiXeD", lambda ctx: "built")
        context = StageContext(llm_client=None, fewshot_bank=lambda: None, cdrl_config=None)
        assert registry.create(KIND_SESSION_GENERATOR, "mixed", context) == "built"


class TestRequestStageValidation:
    def test_unknown_stage_kind_rejected(self):
        with pytest.raises(RequestValidationError) as excinfo:
            _request(stages={"sessiongenerator": "atena"}).validate()
        assert any(f.startswith("stages.") for f in excinfo.value.fields())

    def test_blank_stage_name_rejected(self):
        with pytest.raises(RequestValidationError) as excinfo:
            _request(stages={"session_generator": "  "}).validate()
        assert "stages.session_generator" in excinfo.value.fields()

    def test_stages_round_trip_through_json(self):
        request = _request(stages={"session_generator": "atena"})
        restored = ExploreRequest.from_dict(request.to_dict())
        assert restored == request
        assert restored.stages == {"session_generator": "atena"}

    def test_canonical_hash_covers_stage_selection(self):
        plain = _request()
        atena = _request(stages={"session_generator": "atena"})
        assert plain.canonical_hash() != atena.canonical_hash()
        # ... but an empty mapping is the same identity as no mapping.
        assert plain.canonical_hash() == _request(stages={}).canonical_hash()

    def test_canonical_hash_ignores_request_id(self):
        assert (
            _request(request_id="a").canonical_hash()
            == _request(request_id="b").canonical_hash()
        )

    def test_canonical_hash_normalizes_stage_name_spelling(self):
        # The registry resolves names case-insensitively and stripped, so
        # equivalent spellings must share one identity (dedup + store key).
        assert (
            _request(stages={"session_generator": "atena"}).canonical_hash()
            == _request(stages={"session_generator": " Atena "}).canonical_hash()
        )


class TestEngineStageSelection:
    def test_engine_level_stage_names(self, netflix_mini):
        engine = LinxEngine(
            cdrl_config=CdrlConfig(episodes=6, seed=0),
            stages={"session_generator": "atena"},
        )
        result = engine.explore(_request(), table=netflix_mini)
        assert result.stage_names["session_generator"] == "atena"
        assert result.episodes_trained > 0

    def test_per_request_stage_selection_overrides_engine(self, netflix_mini):
        engine = LinxEngine(cdrl_config=CdrlConfig(episodes=6, seed=0))
        default = engine.explore(_request(), table=netflix_mini)
        assert default.stage_names["session_generator"] == "cdrl"
        swapped = engine.explore(
            _request(stages={"session_generator": "atena"}), table=netflix_mini
        )
        assert swapped.stage_names["session_generator"] == "atena"
        # The engine's configured default is untouched for later requests.
        again = engine.explore(_request(), table=netflix_mini)
        assert again.stage_names["session_generator"] == "cdrl"

    def test_unknown_request_stage_name_fails_before_work(self, netflix_mini):
        engine = LinxEngine(cdrl_config=CdrlConfig(episodes=6))
        with pytest.raises(RequestValidationError) as excinfo:
            engine.explore(
                _request(stages={"session_generator": "no-such"}), table=netflix_mini
            )
        assert "stages.session_generator" in excinfo.value.fields()

    def test_unknown_engine_stage_kind_rejected(self):
        with pytest.raises(ValueError):
            LinxEngine(stages={"generator": "cdrl"})

    def test_custom_registered_stage_usable_by_name(self, netflix_mini):
        @register_stage_factory(KIND_SESSION_GENERATOR, "stub-registry-test")
        def _build(context):
            class _Stub:
                name = "stub-registry-test"

                def generate(self, table, ldx_text, *, episodes=None, seed=None,
                             cache=None, on_episode=None):
                    session = session_from_operations(
                        table,
                        [
                            FilterOperation("country", "eq", "India"),
                            GroupAggOperation("type", "count", "type"),
                        ],
                        cache=cache,
                    )
                    return SessionOutcome(session=session, episodes_trained=1)

            return _Stub()

        engine = LinxEngine(cdrl_config=CdrlConfig(episodes=6))
        result = engine.explore(
            _request(stages={"session_generator": "stub-registry-test"}),
            table=netflix_mini,
        )
        assert result.stage_names["session_generator"] == "stub-registry-test"
        assert result.operations == [
            ["F", "country", "eq", "India"],
            ["G", "type", "count", "type"],
        ]

    def test_stage_instances_memoized_per_engine(self, netflix_mini):
        engine = LinxEngine(cdrl_config=CdrlConfig(episodes=6))
        first = engine._stage_by_name(KIND_SESSION_GENERATOR, "atena")
        second = engine._stage_by_name(KIND_SESSION_GENERATOR, "ATENA")
        assert first is second


class TestProcessModeStageNames:
    def test_named_stages_allowed_in_process_mode(self):
        """Registry-named stages lift the custom-stage process restriction."""
        engine = LinxEngine(
            cdrl_config=CdrlConfig(episodes=5),
            stages={"session_generator": "atena"},
        )
        assert not engine._custom_stages
        assert engine.worker_spec()["stages"] == {"session_generator": "atena"}
        requests = [
            ExploreRequest(
                goal="g", dataset="netflix", num_rows=100, ldx_text=LDX,
                episodes=5, seed=0, request_id="p0",
            )
        ]
        via_process = engine.explore_many(requests, workers="process", max_workers=1)
        via_thread = LinxEngine(
            cdrl_config=CdrlConfig(episodes=5),
            stages={"session_generator": "atena"},
        ).explore_many(requests, workers="thread")
        assert via_process[0].stage_names["session_generator"] == "atena"
        assert via_process[0].operations == via_thread[0].operations

    def test_per_request_names_ride_to_process_workers(self):
        engine = LinxEngine(cdrl_config=CdrlConfig(episodes=5))
        request = ExploreRequest(
            goal="g", dataset="netflix", num_rows=100, ldx_text=LDX,
            episodes=5, seed=0, stages={"session_generator": "atena"},
        )
        [result] = engine.explore_many([request], workers="process", max_workers=1)
        assert result.stage_names["session_generator"] == "atena"

    def test_object_configured_stages_still_rejected(self):
        class NullRenderer:
            name = "null"

            def render(self, session, goal):
                raise NotImplementedError

        engine = LinxEngine(notebook_renderer=NullRenderer())
        with pytest.raises(ValueError):
            engine.explore_many(
                [ExploreRequest(goal="g", dataset="flights")], workers="process"
            )
