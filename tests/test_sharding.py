"""Tests for the sharded, connection-pooled persistence tier.

Covers the :mod:`repro.shards` routing primitives (stable assignment
across processes and runs), the sharded :class:`ResultStore` (round-trip
at several shard counts, batched lease operations, atomic
commit-and-release, shard-count-mismatch wholesale drop) and the sharded
:class:`DiskCacheTier` (per-shard batch flushes, same drop policy).
"""

from __future__ import annotations

import json
import subprocess
import sys
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataframe.column import Column
from repro.dataframe.table import DataTable
from repro.engine.store import STORE_SCHEMA_VERSION, ResultStore
from repro.explore.diskcache import DiskCacheTier
from repro.shards import (
    remove_orphan_shards,
    shard_index_for_digest,
    shard_index_for_hex,
    shard_path,
)

NS = "shard-test-namespace"

#: Hex keys shaped like real canonical request hashes (blake2b hex) —
#: Knuth-hashed so the routing prefix (the first 8 chars) actually varies.
HEX_KEYS = [
    f"{(value * 2654435761) % 2**32:08x}{value:032x}" for value in range(42)
]


def _payload(key: str) -> str:
    return json.dumps({"key": key, "value": len(key)})


class TestRouting:
    def test_hex_routing_matches_documented_formula(self):
        # The contract is literally int(hash[:8], 16) % num_shards; pin a
        # few values so the routing can never silently change (changing it
        # strands every existing shard layout).
        assert shard_index_for_hex("deadbeef" + "0" * 32, 4) == 0xDEADBEEF % 4
        assert shard_index_for_hex("00000001" + "f" * 32, 8) == 1
        assert shard_index_for_hex("ffffffff", 3) == 0xFFFFFFFF % 3

    def test_single_shard_routes_everything_to_zero(self):
        for key in HEX_KEYS:
            assert shard_index_for_hex(key, 1) == 0

    def test_non_hex_keys_route_stably_instead_of_raising(self):
        # Tests and ad-hoc callers use keys like "h1"; routing must be
        # total and deterministic over them too.
        assert shard_index_for_hex("h1", 4) == shard_index_for_hex("h1", 4)
        assert 0 <= shard_index_for_hex("h1", 4) < 4

    @given(
        key=st.text(min_size=1, max_size=64),
        num_shards=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=200, deadline=None)
    def test_hex_routing_is_total_and_in_range(self, key, num_shards):
        index = shard_index_for_hex(key, num_shards)
        assert 0 <= index < num_shards
        assert index == shard_index_for_hex(key, num_shards)

    @given(
        digest=st.binary(min_size=4, max_size=20),
        num_shards=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=200, deadline=None)
    def test_digest_routing_is_total_and_in_range(self, digest, num_shards):
        index = shard_index_for_digest(digest, num_shards)
        assert 0 <= index < num_shards
        assert index == shard_index_for_digest(digest, num_shards)

    def test_routing_is_stable_across_processes(self):
        # The routing input is the hash string, never Python's per-process
        # hash(): a key must land on the same shard in every process that
        # opens the store, or cross-process serving breaks.
        keys = HEX_KEYS[:8] + ["h1", "not-hex-at-all"]
        script = (
            "import json, sys; from repro.shards import shard_index_for_hex; "
            "print(json.dumps([shard_index_for_hex(k, 8) "
            "for k in json.loads(sys.argv[1])]))"
        )
        output = subprocess.run(
            [sys.executable, "-c", script, json.dumps(keys)],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        assert json.loads(output) == [shard_index_for_hex(k, 8) for k in keys]

    def test_shard_path_layout(self, tmp_path):
        base = tmp_path / "results.sqlite"
        assert shard_path(base, 0) == base
        assert shard_path(base, 3) == tmp_path / "results.sqlite.shard3"


class TestShardedResultStore:
    @pytest.mark.parametrize("num_shards", [1, 3, 8])
    def test_all_keys_round_trip(self, tmp_path, num_shards):
        path = tmp_path / "results.sqlite"
        with ResultStore(path, num_shards=num_shards) as store:
            for key in HEX_KEYS:
                store.commit_result(NS, key, _payload(key))
            assert len(store) == len(HEX_KEYS)
            for key in HEX_KEYS:
                assert store.get_payload_text(NS, key) == _payload(key)
                assert store.get_payload(NS, key) == {"key": key, "value": len(key)}
        # ...and across a re-open at the same count.
        with ResultStore(path, num_shards=num_shards) as store:
            assert not store.invalidated
            assert sorted(store.request_hashes(NS)) == sorted(HEX_KEYS)

    def test_keys_actually_spread_over_shard_files(self, tmp_path):
        path = tmp_path / "results.sqlite"
        with ResultStore(path, num_shards=4) as store:
            for key in HEX_KEYS:
                store.commit_result(NS, key, _payload(key))
            occupancy = [shard["entries"] for shard in store.shard_stats()]
        assert sum(occupancy) == len(HEX_KEYS)
        assert all(entries > 0 for entries in occupancy)
        for index in range(1, 4):
            assert shard_path(path, index).exists()

    def test_shard_count_mismatch_drops_wholesale(self, tmp_path):
        path = tmp_path / "results.sqlite"
        with ResultStore(path, num_shards=4) as store:
            for key in HEX_KEYS[:20]:
                store.commit_result(NS, key, _payload(key))
        # Re-opened at a different count, every key would route differently:
        # the per-shard meta detects the mismatch and drops, never misreads.
        with ResultStore(path, num_shards=2) as store:
            assert store.invalidated
            assert len(store) == 0
            store.commit_result(NS, HEX_KEYS[0], _payload(HEX_KEYS[0]))
            assert store.get_payload_text(NS, HEX_KEYS[0]) == _payload(HEX_KEYS[0])

    def test_legacy_single_file_is_compatible_at_one_shard(self, tmp_path):
        # A num_shards=1 store IS the legacy layout: re-opening it at the
        # default count must keep its rows.
        path = tmp_path / "results.sqlite"
        with ResultStore(path, num_shards=1) as store:
            store.commit_result(NS, HEX_KEYS[0], _payload(HEX_KEYS[0]))
        with ResultStore(path) as store:
            assert not store.invalidated
            assert store.get_payload_text(NS, HEX_KEYS[0]) == _payload(HEX_KEYS[0])

    def test_orphan_shard_files_removed_on_shrink(self, tmp_path):
        path = tmp_path / "results.sqlite"
        with ResultStore(path, num_shards=4):
            pass
        assert shard_path(path, 3).exists()
        with ResultStore(path, num_shards=2):
            pass
        assert shard_path(path, 1).exists()
        assert not shard_path(path, 2).exists()
        assert not shard_path(path, 3).exists()

    def test_remove_orphan_shards_reports_removed_files(self, tmp_path):
        path = tmp_path / "results.sqlite"
        with ResultStore(path, num_shards=3):
            pass
        removed = remove_orphan_shards(path, 1)
        assert sorted(removed) == [shard_path(path, 1), shard_path(path, 2)]

    def test_describe_exposes_per_shard_counters(self, tmp_path):
        with ResultStore(tmp_path / "results.sqlite", num_shards=3) as store:
            for key in HEX_KEYS[:12]:
                store.commit_result(NS, key, _payload(key))
                assert store.get_payload_text(NS, key) is not None
            summary = store.describe()
            assert summary["num_shards"] == 3
            assert len(summary["shards"]) == 3
            for shard in summary["shards"]:
                assert {
                    "shard", "path", "entries", "leases_held",
                    "hits", "misses", "writes", "write_retries",
                } <= set(shard)
            assert sum(s["entries"] for s in summary["shards"]) == 12
            assert sum(s["hits"] for s in summary["shards"]) == store.hits == 12
            assert sum(s["writes"] for s in summary["shards"]) == store.writes == 12

    def test_corrupt_payload_text_is_removed_as_miss(self, tmp_path):
        with ResultStore(tmp_path / "results.sqlite", num_shards=2) as store:
            key = HEX_KEYS[0]
            store.commit_result(NS, key, _payload(key))
            shard = store._pool.shard_for_hex(key)
            with shard.conn:
                shard.conn.execute(
                    "UPDATE results SET payload = ? WHERE request_hash = ?",
                    (b"{not json", key),
                )
            assert store.get_payload_text(NS, key) is None
            assert store.misses == 1
            assert len(store) == 0


class TestShardedLeases:
    def test_commit_result_releases_lease_atomically(self, tmp_path):
        with ResultStore(tmp_path / "results.sqlite", num_shards=3) as store:
            key = HEX_KEYS[0]
            assert store.claim(NS, key, "replica-a", ttl=30.0)
            released = store.commit_result(
                NS, key, _payload(key), replica_id="replica-a"
            )
            assert released is True
            assert store.lease(NS, key) is None
            assert store.lease_releases == 1
            # Without a lease (or a replica_id), commit still stores the
            # row and reports nothing released.
            assert store.commit_result(NS, HEX_KEYS[1], _payload(HEX_KEYS[1])) is False

    def test_commit_result_leaves_other_replicas_lease_alone(self, tmp_path):
        with ResultStore(tmp_path / "results.sqlite") as store:
            key = HEX_KEYS[0]
            assert store.claim(NS, key, "replica-a", ttl=30.0)
            assert store.commit_result(
                NS, key, _payload(key), replica_id="replica-b"
            ) is False
            assert store.lease(NS, key)["replica_id"] == "replica-a"

    def test_renew_many_extends_only_held_live_leases(self, tmp_path):
        with ResultStore(tmp_path / "results.sqlite", num_shards=3) as store:
            held = HEX_KEYS[:9]
            for key in held:
                assert store.claim(NS, key, "replica-a", ttl=30.0)
            other = HEX_KEYS[9]
            assert store.claim(NS, other, "replica-b", ttl=30.0)
            before = {key: store.lease(NS, key)["expires_at"] for key in held}
            renewed = store.renew_many(NS, held + [other], "replica-a", ttl=120.0)
            assert renewed == len(held)
            assert store.lease_renewals == len(held)
            for key in held:
                assert store.lease(NS, key)["expires_at"] > before[key]
            # replica-b's lease was untouched by replica-a's batch renew.
            assert store.lease(NS, other)["expires_at"] < before[held[0]] + 120.0

    def test_renew_many_of_nothing_is_a_no_op(self, tmp_path):
        with ResultStore(tmp_path / "results.sqlite") as store:
            assert store.renew_many(NS, [], "replica-a", ttl=30.0) == 0

    def test_batch_expiry_sweeps_every_shard(self, tmp_path):
        with ResultStore(tmp_path / "results.sqlite", num_shards=3) as store:
            expired = HEX_KEYS[:9]
            for key in expired:
                assert store.claim(NS, key, "replica-a", ttl=0.0001)
            live = HEX_KEYS[9]
            assert store.claim(NS, live, "replica-a", ttl=60.0)
            import time as _time

            _time.sleep(0.01)
            assert store.expire_leases() == len(expired)
            assert store.expire_leases() == 0
            assert store.lease(NS, live) is not None

    def test_expiry_sweep_does_not_inflate_takeover_counters(self, tmp_path):
        # Regression guard: a swept (deleted) lease leaves no row, so a
        # later claim is a plain claim, not a takeover — takeovers must
        # count only live-row replacements of a *different* replica.
        with ResultStore(tmp_path / "results.sqlite", num_shards=2) as store:
            key = HEX_KEYS[0]
            assert store.claim(NS, key, "replica-a", ttl=0.0001)
            import time as _time

            _time.sleep(0.01)
            assert store.expire_leases() == 1
            assert store.claim(NS, key, "replica-b", ttl=30.0)
            assert store.lease_takeovers == 0
            # An expired-but-unswept lease, by contrast, IS a takeover.
            key2 = HEX_KEYS[1]
            assert store.claim(NS, key2, "replica-a", ttl=0.0001)
            _time.sleep(0.01)
            assert store.claim(NS, key2, "replica-b", ttl=30.0)
            assert store.lease_takeovers == 1

    def test_release_all_fans_out_across_shards(self, tmp_path):
        with ResultStore(tmp_path / "results.sqlite", num_shards=3) as store:
            for key in HEX_KEYS[:9]:
                assert store.claim(NS, key, "replica-a", ttl=30.0)
            assert store.claim(NS, HEX_KEYS[9], "replica-b", ttl=30.0)
            assert store.release_all("replica-a") == 9
            assert store.leases_held("replica-a") == []
            assert store.leases_held("replica-b") == [HEX_KEYS[9]]


class TestConcurrentReads:
    def test_parallel_readers_see_consistent_rows(self, tmp_path):
        # 8 reader threads over per-thread pooled connections while a
        # writer keeps committing: every read must return either a miss or
        # the full, valid payload — never a torn row.
        with ResultStore(tmp_path / "results.sqlite", num_shards=4) as store:
            keys = HEX_KEYS[:40]
            for key in keys[:20]:
                store.commit_result(NS, key, _payload(key))
            failures: list[str] = []
            stop = threading.Event()

            def read_loop():
                while not stop.is_set():
                    for key in keys:
                        text = store.get_payload_text(NS, key)
                        if text is not None and json.loads(text)["key"] != key:
                            failures.append(key)

            readers = [threading.Thread(target=read_loop) for _ in range(8)]
            for thread in readers:
                thread.start()
            for key in keys[20:]:
                store.commit_result(NS, key, _payload(key))
            stop.set()
            for thread in readers:
                thread.join(timeout=30)
            assert not failures
            assert len(store) == len(keys)


def _table(rows: int, name: str) -> DataTable:
    return DataTable(
        [Column("n", list(range(rows))), Column("label", [name] * rows)],
        name=name,
    )


class TestShardedDiskCache:
    def test_round_trip_and_spread(self, tmp_path):
        with DiskCacheTier(tmp_path / "cache.sqlite", num_shards=3) as tier:
            items = [((f"op-{i}",), _table(4, f"t{i}")) for i in range(30)]
            assert tier.put_many(items) == 30
            assert tier.flushes == 1  # one logical flush, however many shards
            assert len(tier) == 30
            for key, table in items:
                assert tier.get(key) == table
            occupancy = [shard["entries"] for shard in tier.shard_stats()]
            assert sum(occupancy) == 30
            assert all(entries > 0 for entries in occupancy)

    def test_shard_count_mismatch_drops_wholesale(self, tmp_path):
        path = tmp_path / "cache.sqlite"
        with DiskCacheTier(path, num_shards=3) as tier:
            tier.put(("op",), _table(3, "t"))
        with DiskCacheTier(path, num_shards=2) as tier:
            assert tier.invalidated
            assert len(tier) == 0

    def test_legacy_cache_survives_at_one_shard(self, tmp_path):
        path = tmp_path / "cache.sqlite"
        with DiskCacheTier(path) as tier:
            tier.put(("op",), _table(3, "t"))
        with DiskCacheTier(path, num_shards=1) as tier:
            assert not tier.invalidated
            assert tier.get(("op",)) == _table(3, "t")

    def test_describe_reports_shard_layout(self, tmp_path):
        with DiskCacheTier(tmp_path / "cache.sqlite", num_shards=2) as tier:
            summary = tier.describe()
            assert summary["num_shards"] == 2
            assert [shard["shard"] for shard in summary["shards"]] == [0, 1]


class TestSchemaVersion:
    def test_schema_bump_drops_single_and_sharded_stores(self, tmp_path):
        path = tmp_path / "results.sqlite"
        for num_shards in (1, 3):
            with ResultStore(path, num_shards=num_shards) as store:
                store.commit_result(NS, HEX_KEYS[0], _payload(HEX_KEYS[0]))
                with store._conn:
                    store._conn.execute(
                        "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                        (str(STORE_SCHEMA_VERSION + 1),),
                    )
            with ResultStore(path, num_shards=num_shards) as store:
                assert store.invalidated
                assert len(store) == 0
