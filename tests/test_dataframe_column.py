"""Tests for the typed column implementation."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dataframe.column import Column, coerce_value, infer_dtype, is_null
from repro.dataframe.errors import TypeMismatchError


class TestDtypeInference:
    def test_all_ints(self):
        assert infer_dtype([1, 2, 3]) == "int"

    def test_mixed_int_float(self):
        assert infer_dtype([1, 2.5]) == "float"

    def test_strings(self):
        assert infer_dtype(["a", "b"]) == "str"

    def test_mixed_numeric_and_string_is_str(self):
        assert infer_dtype([1, "a"]) == "str"

    def test_all_null_defaults_to_str(self):
        assert infer_dtype([None, None]) == "str"

    def test_bools_are_strings(self):
        assert infer_dtype([True, False]) == "str"

    def test_nulls_ignored(self):
        assert infer_dtype([None, 3, None]) == "int"


class TestNullHandling:
    @pytest.mark.parametrize("value", [None, float("nan"), ""])
    def test_is_null_true(self, value):
        assert is_null(value)

    @pytest.mark.parametrize("value", [0, 0.0, "x", "0", -1])
    def test_is_null_false(self, value):
        assert not is_null(value)

    def test_null_count(self):
        column = Column("x", [1, None, 3, None])
        assert column.null_count() == 2
        assert column.non_null() == [1, 3]


class TestCoercion:
    def test_coerce_to_int(self):
        assert coerce_value("3", "int") == 3
        assert coerce_value(3.7, "int") == 3

    def test_coerce_to_float(self):
        assert coerce_value("3.5", "float") == 3.5

    def test_coerce_to_str(self):
        assert coerce_value(3, "str") == "3"

    def test_coerce_null_returns_none(self):
        assert coerce_value(None, "int") is None

    def test_invalid_coercion_raises(self):
        with pytest.raises(TypeMismatchError):
            coerce_value("abc", "int")

    def test_unknown_dtype_raises(self):
        with pytest.raises(TypeMismatchError):
            Column("x", [1], dtype="datetime")


class TestColumnOperations:
    def test_length_and_iteration(self):
        column = Column("x", [1, 2, 3])
        assert len(column) == 3
        assert list(column) == [1, 2, 3]

    def test_unique_preserves_order(self):
        column = Column("x", ["b", "a", "b", "c", "a"])
        assert column.unique() == ["b", "a", "c"]

    def test_value_counts(self):
        column = Column("x", ["a", "b", "a", None])
        assert column.value_counts() == {"a": 2, "b": 1}

    def test_take(self):
        column = Column("x", [10, 20, 30, 40])
        assert list(column.take([2, 0])) == [30, 10]

    def test_rename_shares_values(self):
        column = Column("x", [1, 2])
        renamed = column.rename("y")
        assert renamed.name == "y"
        assert list(renamed) == [1, 2]

    def test_min_max_mean_sum(self):
        column = Column("x", [3, 1, None, 5])
        assert column.min() == 1
        assert column.max() == 5
        assert column.sum() == 9
        assert column.mean() == 3

    def test_mean_on_string_column_raises(self):
        with pytest.raises(TypeMismatchError):
            Column("x", ["a", "b"]).mean()

    def test_equality_and_hash(self):
        a = Column("x", [1, 2])
        b = Column("x", [1, 2])
        assert a == b
        assert hash(a) == hash(b)

    def test_cast(self):
        column = Column("x", [1, 2]).cast("str")
        assert column.dtype == "str"
        assert list(column) == ["1", "2"]


@given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=50))
def test_property_sum_matches_python_sum(values):
    column = Column("x", values)
    assert column.sum() == sum(values)
    assert column.min() == min(values)
    assert column.max() == max(values)


@given(st.lists(st.one_of(st.none(), st.integers(-50, 50)), max_size=40))
def test_property_null_count_plus_non_null_equals_length(values):
    column = Column("x", values)
    assert column.null_count() + len(column.non_null()) == len(column)


@given(st.lists(st.text(min_size=1, max_size=5), min_size=1, max_size=40))
def test_property_unique_is_set_of_values(values):
    column = Column("x", values)
    assert set(column.unique()) == set(values)
    assert column.nunique() == len(set(values))
