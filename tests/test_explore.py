"""Tests for the exploration model: operations, sessions, executor, rewards, environment."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dataframe import DataTable
from repro.explore import (
    ActionChoice,
    ActionSpace,
    BackOperation,
    ExecutionError,
    ExplorationEnvironment,
    ExplorationSession,
    FilterOperation,
    GenericExplorationReward,
    GroupAggOperation,
    QueryExecutor,
    RootOperation,
    conciseness,
    filter_interestingness,
    kl_divergence,
    operation_from_signature,
    result_distance,
    session_diversity,
    session_from_operations,
)


class TestOperations:
    def test_filter_signature(self):
        op = FilterOperation("country", "=", "India")
        assert op.signature() == ("F", "country", "eq", "India")
        assert "country" in op.describe()

    def test_group_signature_and_alias(self):
        op = GroupAggOperation("type", "CNT", "type")
        assert op.signature() == ("G", "type", "count", "type")

    def test_root_and_back(self):
        assert RootOperation().signature() == ("ROOT",)
        assert BackOperation(2).signature() == ("B", "2")

    def test_from_signature_roundtrip(self):
        op = operation_from_signature(["F", "country", "eq", "India"])
        assert isinstance(op, FilterOperation)
        op = operation_from_signature(["G", "type", "count", "type"])
        assert isinstance(op, GroupAggOperation)

    def test_from_signature_invalid(self):
        with pytest.raises(ValueError):
            operation_from_signature(["Z", "x"])
        with pytest.raises(ValueError):
            operation_from_signature(["F", "a"])


class TestExecutor:
    def test_filter_execution(self, small_table):
        executor = QueryExecutor()
        result = executor.execute(small_table, FilterOperation("country", "eq", "India"))
        assert len(result) == 3

    def test_group_execution(self, small_table):
        executor = QueryExecutor()
        result = executor.execute(small_table, GroupAggOperation("type", "count", "type"))
        assert set(result.columns) == {"type", "count"}

    def test_missing_column_raises(self, small_table):
        executor = QueryExecutor()
        with pytest.raises(ExecutionError):
            executor.execute(small_table, FilterOperation("nope", "eq", "x"))

    def test_mean_on_string_column_raises(self, small_table):
        executor = QueryExecutor()
        with pytest.raises(ExecutionError):
            executor.execute(small_table, GroupAggOperation("type", "mean", "country"))

    def test_can_execute(self, small_table):
        executor = QueryExecutor()
        assert executor.can_execute(small_table, FilterOperation("country", "eq", "India"))
        assert not executor.can_execute(small_table, FilterOperation("nope", "eq", "x"))


class TestSession:
    def test_session_tree_structure(self, compliant_session):
        assert compliant_session.num_queries() == 4
        tree = compliant_session.to_tree()
        assert tree.size() == 5
        assert len(tree.children) == 2

    def test_back_moves_cursor(self, small_table):
        session = ExplorationSession(small_table)
        executor = QueryExecutor()
        op = FilterOperation("country", "eq", "India")
        session.add_operation(op, executor.execute(small_table, op))
        assert session.current.depth() == 1
        session.go_back()
        assert session.current is session.root

    def test_back_at_root_is_safe(self, small_table):
        session = ExplorationSession(small_table)
        session.go_back(3)
        assert session.current is session.root

    def test_steps_include_backs(self, compliant_session):
        assert compliant_session.steps_taken == 5  # 4 queries + 1 back action

    def test_describe_mentions_operations(self, compliant_session):
        text = compliant_session.describe()
        assert "FILTER country = India" in text
        assert "GROUP-BY type" in text

    def test_replay_from_operations_matches(self, small_table):
        ops = [FilterOperation("country", "eq", "US"), GroupAggOperation("type", "count", "type")]
        session = session_from_operations(small_table, ops)
        assert session.num_queries() == 2
        assert session.query_nodes()[1].parent is session.query_nodes()[0]


class TestInterestingnessAndDiversity:
    def test_kl_divergence_zero_for_identical(self):
        assert kl_divergence([0.5, 0.5], [0.5, 0.5]) == pytest.approx(0.0, abs=1e-9)

    def test_kl_divergence_positive_for_different(self):
        assert kl_divergence([0.9, 0.1], [0.5, 0.5]) > 0

    def test_kl_mismatched_support_raises(self):
        with pytest.raises(ValueError):
            kl_divergence([1.0], [0.5, 0.5])

    def test_filter_interestingness_zero_for_identity(self, small_table):
        assert filter_interestingness(small_table, small_table) == 0.0

    def test_filter_interestingness_positive_for_skewed_subset(self, small_table):
        india = small_table.filter_rows(
            [c == "India" for c in small_table.column("country")]
        )
        assert filter_interestingness(small_table, india) > 0.0

    def test_filter_interestingness_empty_result(self, small_table):
        empty = small_table.filter_rows([False] * len(small_table))
        assert filter_interestingness(small_table, empty) == 0.0

    def test_conciseness_single_group_is_zero(self):
        assert conciseness(DataTable({"k": ["a"], "count": [10]})) == 0.0

    def test_conciseness_prefers_few_groups(self):
        few = DataTable({"k": ["a", "b", "c"], "count": [10, 6, 3]})
        many = DataTable({"k": [f"v{i}" for i in range(60)], "count": [1] * 60})
        assert conciseness(few) > conciseness(many)

    def test_result_distance_bounds(self, small_table):
        assert result_distance(small_table, small_table) == pytest.approx(0.0, abs=0.05)
        other = DataTable({"x": [1, 2, 3]})
        assert result_distance(small_table, other) > 0.5

    def test_session_diversity_no_previous(self, small_table):
        assert session_diversity(small_table, []) == 1.0


class TestActionSpaceAndEnvironment:
    def test_head_sizes_cover_all_heads(self, small_table):
        space = ActionSpace(small_table)
        sizes = space.head_sizes()
        assert set(sizes) == {
            "action_type",
            "filter_attr",
            "filter_op",
            "filter_term",
            "group_attr",
            "agg_func",
            "agg_attr",
        }
        assert all(size >= 1 for size in sizes.values())

    def test_decode_filter_and_group(self, small_table):
        space = ActionSpace(small_table)
        op = space.decode(ActionChoice(action_type=1, filter_attr=0, filter_op=0, filter_term=0))
        assert isinstance(op, FilterOperation)
        op = space.decode(ActionChoice(action_type=2, group_attr=0, agg_func=0, agg_attr=0))
        assert isinstance(op, GroupAggOperation)
        op = space.decode(ActionChoice(action_type=0))
        assert isinstance(op, BackOperation)

    def test_count_agg_uses_group_attr(self, small_table):
        space = ActionSpace(small_table)
        index = space.agg_functions.index("count")
        op = space.decode(ActionChoice(action_type=2, group_attr=0, agg_func=index, agg_attr=0))
        assert op.agg_attr == op.group_attr

    def test_terms_derived_per_attribute(self, small_table):
        space = ActionSpace(small_table)
        assert "India" in space.terms["country"]
        assert space.index_of_term("country", "India") is not None
        assert space.index_of_term("country", "Narnia") is None

    def test_environment_episode_lifecycle(self, small_table):
        env = ExplorationEnvironment(small_table, episode_length=3)
        observation = env.reset()
        assert len(observation) == env.observation_size()
        total_steps = 0
        done = False
        while not done:
            result = env.step(ActionChoice(action_type=2))
            done = result.done
            total_steps += 1
        assert total_steps == 3
        with pytest.raises(RuntimeError):
            env.step(ActionChoice(action_type=2))

    def test_environment_invalid_action_penalty(self, small_table):
        env = ExplorationEnvironment(small_table, episode_length=2)
        env.reset()
        # Filtering on a term slot always works, so force an invalid group: mean of a
        # string column cannot happen via decode; instead check invalid flag wiring by
        # using an empty-result filter which is valid but penalised less.
        result = env.step(ActionChoice(action_type=1, filter_attr=0, filter_op=0, filter_term=5))
        assert isinstance(result.reward, float)

    def test_environment_rollout(self, small_table):
        env = ExplorationEnvironment(small_table, episode_length=3)
        session, total = env.rollout(
            [ActionChoice(action_type=1), ActionChoice(action_type=2), ActionChoice(action_type=0)]
        )
        assert session.steps_taken == 3

    def test_session_score_positive_for_good_session(self, compliant_session):
        scorer = GenericExplorationReward()
        assert scorer.session_score(compliant_session) > 0

    def test_observation_memoised_per_view(self, small_table):
        env = ExplorationEnvironment(small_table, episode_length=4)
        first = env.reset()
        assert len(env._view_feature_memo) == 1  # root view featurised once
        env.step(ActionChoice(action_type=1, filter_attr=0, filter_op=0, filter_term=0))
        assert len(env._view_feature_memo) == 2
        # A fresh episode revisits the same views: no new memo entries, and
        # the observation is identical to the first episode's.
        second = env.reset()
        assert len(env._view_feature_memo) == 2
        assert np.array_equal(first, second)

    def test_observation_progress_features_still_change_per_step(self, small_table):
        env = ExplorationEnvironment(small_table, episode_length=4)
        env.reset()
        before = env.observe()
        result = env.step(ActionChoice(action_type=0))  # back at root: same view
        after = result.observation
        # View features (indices 0-1 and 4+) match; progress (2-3) moved on.
        assert np.array_equal(before[:2], after[:2])
        assert np.array_equal(before[4:], after[4:])
        assert before[3] != after[3]


@given(
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=20),
    st.integers(min_value=0, max_value=20),
)
def test_property_decode_never_fails(action_type, a, b):
    table = DataTable(
        {"c": ["x", "y", "z", "x"], "n": [1, 2, 3, 4]}
    )
    space = ActionSpace(table)
    choice = ActionChoice(
        action_type=action_type, filter_attr=a, filter_op=b, filter_term=a,
        group_attr=b, agg_func=a, agg_attr=b,
    )
    operation = space.decode(choice)
    assert operation.kind in ("F", "G", "B")
