"""Tests for the asyncio HTTP front-end (routes, SSE, error mapping)."""

from __future__ import annotations

import http.client
import json
import threading

import pytest

from repro.engine import (
    ExploreRequest,
    ExploreResult,
    LinxEngine,
    RequestScheduler,
    ResultStore,
    SessionOutcome,
)
from repro.engine.serve_smoke import _call, _stream_events
from repro.engine.server import ServerThread
from repro.explore import session_from_operations
from repro.explore.operations import FilterOperation, GroupAggOperation

LDX = "ROOT CHILDREN <A1>\nA1 LIKE [G,.*]"


class StubGenerator:
    name = "stub"

    def __init__(self, release: threading.Event | None = None):
        self.release = release

    def generate(self, table, ldx_text, *, episodes=None, seed=None, cache=None,
                 on_episode=None):
        if on_episode is not None:
            on_episode(0, 1.0, None)
        if self.release is not None:
            assert self.release.wait(30), "release event never set"
        session = session_from_operations(
            table,
            [
                FilterOperation("country", "eq", "India"),
                GroupAggOperation("type", "count", "type"),
            ],
            cache=cache,
        )
        return SessionOutcome(session=session, episodes_trained=1)


@pytest.fixture
def served(tmp_path):
    """A running server over a stub engine + store; yields (port, store)."""
    store = ResultStore(tmp_path / "results.sqlite")
    scheduler = RequestScheduler(
        LinxEngine(session_generator=StubGenerator()), store=store, max_workers=1
    )
    with ServerThread(scheduler) as hosted:
        yield hosted.port, store
    scheduler.shutdown()
    store.close()


def _payload(**overrides) -> dict:
    request = dict(goal="explore", dataset="netflix", num_rows=60, ldx_text=LDX)
    request.update(overrides)
    return request


class TestRoutes:
    def test_healthz(self, served):
        port, _ = served
        status, body = _call(port, "GET", "/healthz")
        assert status == 200
        # Liveness + readiness: status plus the load-balancer signals.
        assert body["status"] == "ok"
        assert body["leases_held"] == 0
        assert body["queue_depth"] == 0
        assert body["replica_id"]

    def test_stages_lists_registry(self, served):
        port, _ = served
        status, body = _call(port, "GET", "/stages")
        assert status == 200
        assert "cdrl" in body["stages"]["session_generator"]
        assert "atena" in body["stages"]["session_generator"]

    def test_unknown_route_404(self, served):
        port, _ = served
        status, _ = _call(port, "GET", "/no/such/route")
        assert status == 404

    def test_wrong_method_on_known_route_405(self, served):
        port, _ = served
        status, body = _call(port, "GET", "/requests")
        assert status == 405
        assert "POST" in body["error"]
        status, _ = _call(port, "POST", "/healthz")
        assert status == 405

    def test_negative_content_length_400(self, served):
        port, _ = served
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            connection.putrequest("POST", "/requests", skip_accept_encoding=True)
            connection.putheader("Content-Length", "-5")
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 400
        finally:
            connection.close()

    def test_unknown_ticket_404(self, served):
        port, _ = served
        for path in ("/requests/t-999", "/requests/t-999/result", "/requests/t-999/events"):
            status, _ = _call(port, "GET", path)
            assert status == 404, path

    def test_stats_exposes_all_tiers(self, served):
        port, _ = served
        status, body = _call(port, "GET", "/stats")
        assert status == 200
        assert {"scheduler", "engine_cache", "store"} <= set(body)
        # The store reports per-shard occupancy and counters, one entry
        # per shard file (the default layout is a single shard 0).
        shards = body["store"]["shards"]
        assert [shard["shard"] for shard in shards] == [0]
        assert {
            "shard", "path", "entries", "leases_held",
            "hits", "misses", "writes", "write_retries",
        } <= set(shards[0])

    def test_sharded_store_surfaces_in_stats_and_healthz(self, tmp_path):
        store = ResultStore(tmp_path / "results.sqlite", num_shards=4)
        scheduler = RequestScheduler(
            LinxEngine(session_generator=StubGenerator()), store=store, max_workers=1
        )
        try:
            with ServerThread(scheduler) as hosted:
                status, body = _call(hosted.port, "GET", "/stats")
                assert status == 200
                assert body["store"]["num_shards"] == 4
                assert [s["shard"] for s in body["store"]["shards"]] == [0, 1, 2, 3]
                status, health = _call(hosted.port, "GET", "/healthz")
                assert status == 200
                assert [s["shard"] for s in health["store_shards"]] == [0, 1, 2, 3]
        finally:
            scheduler.shutdown()
            store.close()


class TestSubmitAndResult:
    def test_submit_runs_and_serves_result(self, served):
        port, store = served
        status, submitted = _call(port, "POST", "/requests", _payload(request_id="r1"))
        assert status == 202
        ticket = submitted["ticket"]
        assert submitted["state"] in ("queued", "running")
        events = _stream_events(port, ticket, timeout=60)
        kinds = [event["kind"] for event in events]
        assert kinds[0] == "request_started"
        assert kinds[-1] == "request_finished"
        assert "episode" in kinds
        status, body = _call(port, "GET", f"/requests/{ticket}/result")
        assert status == 200
        result = ExploreResult.from_dict(body["result"])
        assert result.operations == [
            ["F", "country", "eq", "India"],
            ["G", "type", "count", "type"],
        ]
        assert len(store) == 1

    def test_identical_resubmission_served_from_store(self, served):
        port, _ = served
        status, first = _call(port, "POST", "/requests", _payload())
        assert status == 202
        _stream_events(port, first["ticket"], timeout=60)  # run to completion
        status, second = _call(port, "POST", "/requests", _payload())
        assert status == 202
        assert second["served_from_store"] is True
        assert second["state"] == "done"
        assert second["ticket"] != first["ticket"]
        _, first_result = _call(port, "GET", f"/requests/{first['ticket']}/result")
        _, second_result = _call(port, "GET", f"/requests/{second['ticket']}/result")
        assert first_result["result"] == second_result["result"]

    def test_result_of_live_ticket_is_202(self, tmp_path):
        release = threading.Event()
        scheduler = RequestScheduler(
            LinxEngine(session_generator=StubGenerator(release=release)), max_workers=1
        )
        try:
            with ServerThread(scheduler) as hosted:
                status, submitted = _call(hosted.port, "POST", "/requests", _payload())
                assert status == 202
                status, body = _call(
                    hosted.port, "GET", f"/requests/{submitted['ticket']}/result"
                )
                assert status == 202
                assert body["state"] in ("queued", "running")
                release.set()
        finally:
            release.set()
            scheduler.shutdown()


class TestErrorMapping:
    def test_invalid_json_body_400(self, served):
        port, _ = served
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            connection.request("POST", "/requests", body="{not json",
                               headers={"Content-Type": "application/json"})
            response = connection.getresponse()
            assert response.status == 400
            assert "invalid JSON" in json.loads(response.read())["error"]
        finally:
            connection.close()

    def test_validation_errors_are_structured_400(self, served):
        port, _ = served
        status, body = _call(port, "POST", "/requests", _payload(dataset="nope"))
        assert status == 400
        assert body["errors"][0]["field"] == "dataset"

    def test_unknown_request_field_400(self, served):
        port, _ = served
        status, body = _call(port, "POST", "/requests", _payload(bogus=1))
        assert status == 400
        assert body["errors"][0]["field"] == "bogus"

    def test_full_queue_maps_to_429(self, tmp_path):
        release = threading.Event()
        scheduler = RequestScheduler(
            LinxEngine(session_generator=StubGenerator(release=release)),
            max_workers=1,
            max_pending=1,
        )
        try:
            with ServerThread(scheduler) as hosted:
                status, _ = _call(hosted.port, "POST", "/requests", _payload(seed=1))
                assert status == 202
                status, body = _call(hosted.port, "POST", "/requests", _payload(seed=2))
                assert status == 429
                assert "full" in body["error"]
                release.set()
        finally:
            release.set()
            scheduler.shutdown()

    def test_failed_request_result_is_409(self, tmp_path):
        class Exploding:
            name = "boom"

            def generate(self, table, ldx_text, **kwargs):
                raise RuntimeError("kaput")

        scheduler = RequestScheduler(
            LinxEngine(session_generator=Exploding()), max_workers=1
        )
        try:
            with ServerThread(scheduler) as hosted:
                status, submitted = _call(hosted.port, "POST", "/requests", _payload())
                assert status == 202
                events = _stream_events(hosted.port, submitted["ticket"], timeout=60)
                assert events[-1]["kind"] == "request_failed"
                status, body = _call(
                    hosted.port, "GET", f"/requests/{submitted['ticket']}/result"
                )
                assert status == 409
                assert body["state"] == "failed"
                assert "kaput" in body["error"]
        finally:
            scheduler.shutdown()


class TestCancelEndpoint:
    def test_cancel_queued_request_over_http(self, tmp_path):
        release = threading.Event()
        scheduler = RequestScheduler(
            LinxEngine(session_generator=StubGenerator(release=release)), max_workers=1
        )
        try:
            with ServerThread(scheduler) as hosted:
                _call(hosted.port, "POST", "/requests", _payload(seed=1))
                status, queued = _call(hosted.port, "POST", "/requests", _payload(seed=2))
                assert status == 202
                status, body = _call(
                    hosted.port, "POST", f"/requests/{queued['ticket']}/cancel"
                )
                assert status == 202
                assert body["cancel_effective"] is True
                assert body["state"] == "cancelled"
                events = _stream_events(hosted.port, queued["ticket"], timeout=30)
                assert events[-1]["kind"] == "request_cancelled"
                release.set()
        finally:
            release.set()
            scheduler.shutdown()


class TestSSEFraming:
    def test_event_stream_replays_for_finished_ticket(self, served):
        """A consumer attaching after completion still gets the full log."""
        port, _ = served
        status, submitted = _call(port, "POST", "/requests", _payload())
        ticket = submitted["ticket"]
        live = _stream_events(port, ticket, timeout=60)
        replayed = _stream_events(port, ticket, timeout=30)
        assert [event["kind"] for event in replayed] == [
            event["kind"] for event in live
        ]
        assert all(set(event) == {"request_id", "kind", "stage", "payload"}
                   for event in replayed)


class TestDrainOverHttp:
    def test_drain_then_submit_is_503_and_healthz_reports_draining(self, tmp_path):
        scheduler = RequestScheduler(
            LinxEngine(session_generator=StubGenerator()), max_workers=1
        )
        try:
            with ServerThread(scheduler) as hosted:
                status, _ = _call(hosted.port, "POST", "/requests", _payload(seed=1))
                assert status == 202
                scheduler.drain()
                status, health = _call(hosted.port, "GET", "/healthz")
                assert status == 200
                assert health["status"] == "draining"
                status, body = _call(hosted.port, "POST", "/requests", _payload(seed=2))
                assert status == 503
                assert "draining" in body["error"]
        finally:
            scheduler.shutdown()
