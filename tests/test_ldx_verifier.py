"""Tests for the LDX verification engine and the partial/look-ahead variants."""

from __future__ import annotations

import pytest

from repro.explore import (
    BackOperation,
    FilterOperation,
    GroupAggOperation,
    session_from_operations,
)
from repro.ldx import (
    can_still_comply,
    catalan_number,
    count_completions,
    enumerate_completions,
    find_assignment,
    operational_match_ratio,
    parse_ldx,
    partial_structural_ratio,
    structural_assignments,
    verify,
    verify_structure,
)


class TestFullVerification:
    def test_compliant_session_verifies(self, compliant_session, comparison_query):
        assert verify(compliant_session.to_tree(), comparison_query)

    def test_noncompliant_structure_fails(self, noncompliant_session, comparison_query):
        assert not verify(noncompliant_session.to_tree(), comparison_query)

    def test_continuity_violation_fails(self, small_table, comparison_query):
        # Both branches must filter on the same country value (variable X).
        session = session_from_operations(
            small_table,
            [
                FilterOperation("country", "eq", "India"),
                GroupAggOperation("type", "count", "type"),
                BackOperation(2),
                FilterOperation("country", "neq", "US"),  # different term: X mismatch
                GroupAggOperation("type", "count", "type"),
            ],
        )
        assert verify_structure(session.to_tree(), comparison_query)
        assert not verify(session.to_tree(), comparison_query)

    def test_group_continuity_violation_fails(self, small_table, comparison_query):
        # Both group-bys must use the same column (variable Y).
        session = session_from_operations(
            small_table,
            [
                FilterOperation("country", "eq", "India"),
                GroupAggOperation("type", "count", "type"),
                BackOperation(2),
                FilterOperation("country", "neq", "India"),
                GroupAggOperation("rating", "count", "rating"),
            ],
        )
        assert not verify(session.to_tree(), comparison_query)

    def test_extra_operations_still_comply(self, small_table, comparison_query):
        session = session_from_operations(
            small_table,
            [
                FilterOperation("country", "eq", "India"),
                GroupAggOperation("type", "count", "type"),
                BackOperation(2),
                FilterOperation("country", "neq", "India"),
                GroupAggOperation("type", "count", "type"),
                BackOperation(1),
                GroupAggOperation("rating", "count", "rating"),  # extra unnamed node
            ],
        )
        assert verify(session.to_tree(), comparison_query)

    def test_find_assignment_binds_continuity(self, compliant_session, comparison_query):
        assignment = find_assignment(compliant_session.to_tree(), comparison_query)
        assert assignment is not None
        assert assignment.continuity["X"] == "India"
        assert assignment.continuity["Y"] == "type"
        assert set(assignment.nodes) == {"ROOT", "B1", "C1", "B2", "C2"}

    def test_wrong_operation_kind_fails(self, small_table):
        query = parse_ldx("ROOT CHILDREN <A>\nA LIKE [G,country,count,.*]")
        session = session_from_operations(
            small_table, [FilterOperation("country", "eq", "India")]
        )
        assert not verify(session.to_tree(), query)

    def test_descendants_allows_deep_match(self, small_table):
        query = parse_ldx("ROOT DESCENDANTS <A>\nA LIKE [G,type,count,.*]")
        session = session_from_operations(
            small_table,
            [FilterOperation("country", "eq", "US"), GroupAggOperation("type", "count", "type")],
        )
        assert verify(session.to_tree(), query)

    def test_children_requires_direct_child(self, small_table):
        query = parse_ldx("ROOT CHILDREN <A>\nA LIKE [G,type,count,.*]")
        session = session_from_operations(
            small_table,
            [FilterOperation("country", "eq", "US"), GroupAggOperation("type", "count", "type")],
        )
        assert not verify(session.to_tree(), query)


class TestStructuralVerification:
    def test_structural_assignments_found(self, compliant_session, comparison_query):
        assignments = structural_assignments(compliant_session.to_tree(), comparison_query)
        assert len(assignments) >= 1

    def test_operational_ratio_full(self, compliant_session, comparison_query):
        assert operational_match_ratio(compliant_session.to_tree(), comparison_query) == 1.0

    def test_operational_ratio_partial(self, small_table, comparison_query):
        # Right structure but the filters target the wrong attribute.
        session = session_from_operations(
            small_table,
            [
                FilterOperation("type", "eq", "Movie"),
                GroupAggOperation("rating", "count", "rating"),
                BackOperation(2),
                FilterOperation("type", "neq", "Movie"),
                GroupAggOperation("rating", "count", "rating"),
            ],
        )
        ratio = operational_match_ratio(session.to_tree(), comparison_query)
        assert 0.0 < ratio < 1.0

    def test_partial_structural_ratio_monotone(self, small_table, comparison_query):
        empty = session_from_operations(small_table, [])
        one_branch = session_from_operations(
            small_table,
            [FilterOperation("country", "eq", "India"), GroupAggOperation("type", "count", "type")],
        )
        full = session_from_operations(
            small_table,
            [
                FilterOperation("country", "eq", "India"),
                GroupAggOperation("type", "count", "type"),
                BackOperation(2),
                FilterOperation("country", "neq", "India"),
                GroupAggOperation("type", "count", "type"),
            ],
        )
        r_empty = partial_structural_ratio(empty.to_tree(), comparison_query)
        r_half = partial_structural_ratio(one_branch.to_tree(), comparison_query)
        r_full = partial_structural_ratio(full.to_tree(), comparison_query)
        assert r_empty <= r_half <= r_full
        assert r_full == 1.0


class TestPartialLookahead:
    def test_catalan_numbers(self):
        assert [catalan_number(n) for n in range(6)] == [1, 1, 2, 5, 14, 42]

    def test_catalan_negative_raises(self):
        with pytest.raises(ValueError):
            catalan_number(-1)

    def test_completion_counts_follow_catalan_growth(self, small_table):
        session = session_from_operations(
            small_table, [FilterOperation("country", "eq", "India")]
        )
        tree = session.to_tree()
        counts = [count_completions(tree, k) for k in range(4)]
        assert counts == [1, 2, 5, 14]
        assert all(
            count <= catalan_number(k + 2) for k, count in enumerate(counts)
        )

    def test_completions_preserve_original(self, small_table):
        session = session_from_operations(
            small_table, [FilterOperation("country", "eq", "India")]
        )
        tree = session.to_tree()
        size_before = tree.size()
        list(enumerate_completions(tree, 2))
        assert tree.size() == size_before

    def test_can_still_comply_true_with_enough_steps(self, small_table, comparison_query):
        session = session_from_operations(
            small_table, [FilterOperation("country", "eq", "India")]
        )
        assert can_still_comply(session.to_tree(), comparison_query, remaining_steps=3)

    def test_cannot_comply_with_too_few_steps(self, small_table, comparison_query):
        session = session_from_operations(
            small_table, [FilterOperation("country", "eq", "India")]
        )
        # Needs at least three more nodes (C1, B2, C2); one is not enough.
        assert not can_still_comply(session.to_tree(), comparison_query, remaining_steps=1)

    def test_already_compliant_session_trivially_complies(
        self, compliant_session, comparison_query
    ):
        assert can_still_comply(compliant_session.to_tree(), comparison_query, 0)
