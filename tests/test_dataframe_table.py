"""Tests for the DataTable engine: filtering, grouping, sorting, IO."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dataframe import (
    AggregationError,
    ColumnNotFoundError,
    DataTable,
    Predicate,
    SchemaError,
    concat_rows,
    read_delimited_text,
    table_to_csv_text,
)


@pytest.fixture
def table() -> DataTable:
    return DataTable(
        {
            "city": ["Rome", "Oslo", "Rome", "Lima", "Oslo", "Rome"],
            "temp": [30, 5, 28, 22, 7, 31],
            "rain": [0.1, 2.0, 0.0, 1.2, 1.8, 0.2],
        }
    )


class TestConstruction:
    def test_from_mapping(self, table):
        assert table.num_rows == 6
        assert table.columns == ["city", "temp", "rain"]

    def test_from_records_missing_keys_become_null(self):
        table = DataTable.from_records([{"a": 1}, {"a": 2, "b": "x"}])
        assert table.column("b")[0] is None

    def test_mismatched_lengths_raise(self):
        with pytest.raises(SchemaError):
            DataTable({"a": [1, 2], "b": [1]})

    def test_duplicate_columns_raise(self):
        from repro.dataframe.column import Column

        with pytest.raises(SchemaError):
            DataTable([Column("a", [1]), Column("a", [2])])

    def test_empty_table(self):
        table = DataTable.empty(["a", "b"])
        assert len(table) == 0
        assert table.columns == ["a", "b"]

    def test_unknown_column_raises(self, table):
        with pytest.raises(ColumnNotFoundError):
            table.column("humidity")


class TestFilter:
    def test_filter_eq(self, table):
        result = table.filter(Predicate("city", "eq", "Rome"))
        assert len(result) == 3
        assert set(result.column("city")) == {"Rome"}

    def test_filter_numeric_comparison(self, table):
        result = table.filter(Predicate("temp", "ge", 22))
        assert len(result) == 4

    def test_filter_neq(self, table):
        result = table.filter(Predicate("city", "neq", "Rome"))
        assert len(result) == 3

    def test_filter_contains_case_insensitive(self, table):
        result = table.filter(Predicate("city", "contains", "os"))
        assert set(result.column("city")) == {"Oslo"}

    def test_filter_rows_mask(self, table):
        result = table.filter_rows([True, False, True, False, False, False])
        assert len(result) == 2

    def test_filter_rows_bad_mask_length(self, table):
        with pytest.raises(SchemaError):
            table.filter_rows([True])

    def test_filter_returns_new_table(self, table):
        before = len(table)
        table.filter(Predicate("city", "eq", "Rome"))
        assert len(table) == before


class TestGroupByAgg:
    def test_count(self, table):
        result = table.groupby_agg("city", "count")
        counts = {row["city"]: row["count"] for row in result.rows()}
        assert counts == {"Rome": 3, "Oslo": 2, "Lima": 1}

    def test_mean(self, table):
        result = table.groupby_agg("city", "mean", "temp")
        means = {row["city"]: row["mean_temp"] for row in result.rows()}
        assert means["Oslo"] == pytest.approx(6.0)

    def test_sum_and_sorting_descending(self, table):
        result = table.groupby_agg("city", "sum", "temp")
        values = [row["sum_temp"] for row in result.rows()]
        assert values == sorted(values, reverse=True)

    def test_sum_on_string_column_raises(self, table):
        with pytest.raises(AggregationError):
            table.groupby_agg("city", "sum", "city")

    def test_alias_cnt_and_avg(self, table):
        assert "count" in table.groupby_agg("city", "CNT").columns
        assert "mean_temp" in table.groupby_agg("city", "AVG", "temp").columns

    def test_nunique(self, table):
        result = table.groupby_agg("city", "nunique", "temp")
        values = {row["city"]: row["nunique_temp"] for row in result.rows()}
        assert values["Rome"] == 3

    def test_null_keys_skipped(self):
        table = DataTable({"k": ["a", None, "a"], "v": [1, 2, 3]})
        result = table.groupby_agg("k", "count")
        assert len(result) == 1


class TestSortSelectDescribe:
    def test_sort_ascending(self, table):
        result = table.sort_by("temp")
        assert list(result.column("temp")) == sorted(table.column("temp"))

    def test_sort_descending_nulls_last(self):
        table = DataTable({"x": [3, None, 1]})
        result = table.sort_by("x", descending=True)
        assert list(result.column("x")) == [3, 1, None]

    def test_select(self, table):
        assert table.select(["temp"]).columns == ["temp"]

    def test_head(self, table):
        assert len(table.head(2)) == 2

    def test_describe_numeric_and_categorical(self, table):
        summary = table.describe()
        assert summary["temp"]["min"] == 5
        assert summary["city"]["top"] == "Rome"

    def test_numeric_and_categorical_columns(self, table):
        assert set(table.numeric_columns()) == {"temp", "rain"}
        assert table.categorical_columns() == ["city"]

    def test_sample_values_deterministic(self, table):
        assert table.sample_values("city", 2, seed=1) == table.sample_values("city", 2, seed=1)


class TestConcatAndIO:
    def test_concat_rows(self, table):
        doubled = concat_rows([table, table])
        assert len(doubled) == 2 * len(table)

    def test_concat_schema_mismatch(self, table):
        other = DataTable({"x": [1]})
        with pytest.raises(SchemaError):
            concat_rows([table, other])

    def test_csv_roundtrip_via_text(self, table):
        text = table_to_csv_text(table)
        parsed = read_delimited_text(text)
        assert parsed.columns == table.columns
        assert len(parsed) == len(table)
        assert list(parsed.column("temp")) == list(table.column("temp"))

    def test_read_delimited_infers_types(self):
        parsed = read_delimited_text("a,b,c\n1,2.5,x\n3,4.5,y\n")
        assert parsed.schema() == {"a": "int", "b": "float", "c": "str"}

    def test_read_delimited_empty_cells_are_null(self):
        parsed = read_delimited_text("a,b\n1,\n,2\n")
        assert parsed.column("a")[1] is None
        assert parsed.column("b")[0] is None


# -- property-based invariants -------------------------------------------------------------

@given(
    st.lists(st.sampled_from(["x", "y", "z"]), min_size=1, max_size=60),
    st.lists(st.integers(0, 100), min_size=1, max_size=60),
)
def test_property_groupby_count_partitions_rows(keys, values):
    length = min(len(keys), len(values))
    table = DataTable({"k": keys[:length], "v": values[:length]})
    grouped = table.groupby_agg("k", "count")
    assert sum(row["count"] for row in grouped.rows()) == length


@given(st.lists(st.integers(-100, 100), min_size=1, max_size=60))
def test_property_filter_partitions_table(values):
    table = DataTable({"v": values})
    low = table.filter(Predicate("v", "lt", 0))
    high = table.filter(Predicate("v", "ge", 0))
    assert len(low) + len(high) == len(table)
